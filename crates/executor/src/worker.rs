//! The slave backend: one worker thread executing its share of a fragment.
//!
//! Workers never receive control messages. All coordination happens through
//! the shared partition state (Section 2.4): a worker asks for its next page
//! or key under the partition mutex, and the answer reflects any adjustment
//! the master has applied — including "you are retired" (`None`). This is
//! the shared-memory, low-communication-cost design the paper credits for
//! making dynamic parallelism adjustment cheap.
//!
//! # De-contended data path
//!
//! The seed pushed every result tuple through a fragment-global
//! `Mutex<Vec>` and took the CPU gate once per `compute` call, so at 8
//! workers the hot path serialized on those locks. Now each worker owns a
//! local output buffer that accumulates its **entire** share of the
//! fragment output — zero sink-lock rounds while scanning — and is stably
//! sorted by key and handed to the sink as **one sorted run** when the
//! worker exits (or dies, or is retired). The per-worker sorts run in
//! parallel across the workers, and the master replaces its full
//! O(n log n) re-sort with a k-way merge of the few worker runs. Simulated
//! CPU is accumulated locally and charged through the gate per batch. The
//! fragment completes when every unit is done **and** every worker has
//! flushed and exited — completion is announced by the last worker out, so
//! the master never harvests a partially flushed sink. The seed's
//! per-tuple-lock behaviour remains available as
//! [`DataPath::GlobalLock`](crate::master::DataPath) and is what the
//! `bench_executor` baseline measures.

use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xprs_disk::{RelId, SpillFile, WorkerFaultKind};
use xprs_storage::partition::{PagePartition, RangePartition};
use xprs_storage::runs::is_sorted_run;
use xprs_storage::{Catalog, Relation, Tuple};

use crate::io::{lock, IoFault, Machine};
use crate::master::MasterMsg;
use crate::obs::ExecMetrics;
use crate::program::{Driver, FragmentProgram, Materialized, PipelineOp};
use crate::steal::StealPartition;

/// Per-query-relation execution binding: catalog name plus the concrete
/// selection range on `a` the query applies.
#[derive(Debug, Clone)]
pub struct RelBinding {
    /// Catalog relation name.
    pub name: String,
    /// Inclusive selection range on attribute `a`.
    pub pred: (i32, i32),
}

impl RelBinding {
    fn admits(&self, key: i32) -> bool {
        key >= self.pred.0 && key <= self.pred.1
    }
}

/// The shared partition behind the fragment's mutex.
pub(crate) enum PartitionState {
    /// Page-partitioned scan.
    Page(PagePartition),
    /// Range-partitioned scan / key-domain walk.
    Range(RangePartition),
    /// Morsel-driven work stealing over unit indices `[0, total_units)`.
    /// The fragment mutex is taken once, to discover the variant; all
    /// further coordination lives inside the [`StealPartition`].
    Morsel {
        /// The stealing deque layer.
        part: Arc<StealPartition>,
        /// Key a unit offset of 0 maps to (0 for page scans).
        key_base: i64,
    },
}

/// The fragment's result sink: one **locally sorted run** per worker
/// episode, one lock round per run. The worker sorts its accumulated
/// output *before* taking the sink lock, so the sort work itself runs in
/// parallel across workers and the master can replace its full O(n log n)
/// re-sort with an O(n log k) k-way merge of the runs (k ≈ the number of
/// worker episodes, not the output size).
#[derive(Default)]
pub(crate) struct OutputSink {
    batches: Mutex<Vec<Vec<(i32, Tuple)>>>,
}

impl OutputSink {
    /// Sort the worker's accumulated output by key (stably, outside the
    /// lock) and append it as one run (the buffer is emptied).
    ///
    /// The sort is indirect: keys and positions pack into `u64`s
    /// (sign-flipped key in the high half, position in the low half, so
    /// unstable integer sort is stable on keys by construction) and the
    /// 32-byte rows move exactly once, in the final gather — measurably
    /// faster than dragging the rows through the sort itself.
    pub(crate) fn push_run(&self, local: &mut Vec<(i32, Tuple)>) {
        if local.is_empty() {
            return;
        }
        let run = sort_run(local);
        lock(&self.batches).push(run);
    }

    /// Append several already-sorted runs in one lock round, preserving
    /// their order. The spill path uses this so a worker's spilled chunks
    /// and its final in-memory chunk land **contiguously** — together with
    /// the merge's stable run-index tie-break, this keeps the merged
    /// stream byte-identical to the unspilled run's.
    pub(crate) fn push_runs(&self, runs: Vec<Vec<(i32, Tuple)>>) {
        let mut b = lock(&self.batches);
        b.extend(runs.into_iter().filter(|r| !r.is_empty()));
    }

    /// Seed-path emulation: one lock round per tuple into a single vector.
    pub(crate) fn push_contended(&self, key: i32, tuple: Tuple) {
        let mut b = lock(&self.batches);
        if b.is_empty() {
            b.push(Vec::new());
        }
        b[0].push((key, tuple));
    }

    /// Take everything flushed so far as one flat row vector (the legacy
    /// harvest; the caller re-sorts).
    pub(crate) fn harvest(&self) -> Vec<(i32, Tuple)> {
        let mut batches = mem::take(&mut *lock(&self.batches));
        let total = batches.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for b in &mut batches {
            out.append(b);
        }
        out
    }

    /// Take everything flushed so far as the locally sorted runs the
    /// batched path produced, ready for a k-way merge.
    pub(crate) fn harvest_runs(&self) -> Vec<Vec<(i32, Tuple)>> {
        mem::take(&mut *lock(&self.batches))
    }
}

/// Stably sort a worker's accumulated output by key, emptying `local`.
///
/// The sort is indirect: keys and positions pack into `u64`s
/// (sign-flipped key in the high half, position in the low half, so
/// unstable integer sort is stable on keys by construction) and the
/// 32-byte rows move exactly once, in the final gather.
fn sort_run(local: &mut Vec<(i32, Tuple)>) -> Vec<(i32, Tuple)> {
    if is_sorted_run(local) {
        return mem::take(local);
    }
    let mut order: Vec<u64> = local
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| ((((k as u32) ^ 0x8000_0000) as u64) << 32) | i as u64)
        .collect();
    order.sort_unstable();
    let mut slots: Vec<Option<(i32, Tuple)>> = mem::take(local).into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|p| slots[(p & 0xFFFF_FFFF) as usize].take().expect("unique position"))
        .collect()
}

/// Spill protocol parameters for a fragment running under a memory grant
/// smaller than its working set: when a worker's output buffer reaches
/// `threshold_rows`, the buffer is sorted **now** and written out as one
/// spill run (charged to the disk array at `row_bytes` per row), then read
/// back at settle time for the k-way merge. The counters feed the
/// [`ExecReport`](crate::master::ExecReport) spill ledger.
pub(crate) struct SpillSpec {
    /// Rows a worker may buffer before it must cut a spill run.
    pub threshold_rows: usize,
    /// Estimated bytes per output row (from the optimizer's cost model),
    /// for translating rows into striped 8 KB spill blocks.
    pub row_bytes: usize,
    /// Spill runs cut, across all workers of the fragment.
    pub chunks: AtomicU64,
    /// Rows spilled, across all workers of the fragment.
    pub rows: AtomicU64,
}

/// Shared state of one running fragment.
pub(crate) struct FragCtx {
    /// Global fragment index (across all queries of the run).
    pub gid: usize,
    /// The compiled pipeline.
    pub program: FragmentProgram,
    /// Bindings for the owning query's relations.
    pub rels: Vec<RelBinding>,
    /// Materialized inputs, keyed by per-query fragment index.
    pub inputs: HashMap<usize, Arc<Materialized>>,
    /// The Section 2.4 partition state.
    pub partition: Mutex<PartitionState>,
    /// Slots whose worker has exited (may be re-staffed on adjust).
    pub exited_slots: Mutex<Vec<usize>>,
    /// Per-slot liveness counters, bumped once at startup and once per
    /// completed unit. A slot whose counter freezes while the fragment
    /// still has work — and which never registered in `exited_slots` — is
    /// presumed dead by the master's patrol and its share reclaimed.
    pub heartbeats: Mutex<Vec<Arc<AtomicU64>>>,
    /// Completed work units (pages or keys).
    pub units_done: AtomicU64,
    /// Total work units.
    pub total_units: u64,
    /// Worker jobs staffed but not yet exited (incremented by the master at
    /// submit time, decremented by each worker after its final flush).
    pub outstanding: AtomicU32,
    /// Worker jobs staffed over the fragment's whole life (never
    /// decremented); feeds the per-fragment staffing profile.
    pub staffed: AtomicU64,
    /// Result rows.
    pub out: OutputSink,
    /// Current target parallelism (for the solo-stream I/O flag).
    pub target_parallelism: AtomicU32,
    /// Completion latch (the done message fires exactly once).
    pub done: AtomicBool,
    /// Abort flag: workers drain without scanning further work.
    pub aborted: AtomicBool,
    /// Cooperative per-query cancellation: like `aborted`, workers stop at
    /// the next unit/morsel boundary — but the completion protocol keeps
    /// running (the last exiting worker still fires the done message, see
    /// [`FragCtx::worker_exit`]), so the master releases the fragment's
    /// grant and harvests its partial state through the ordinary path.
    pub cancelled: AtomicBool,
    /// Heap pages this fragment actually read (observed footprint), for the
    /// declared-vs-observed memory audit. Counts every page read issued,
    /// including re-reads after eviction — an upper bound on the working
    /// set, compared against the declared grant pages at completion.
    pub pages_read: AtomicU64,
    /// Master notification channel.
    pub done_tx: Sender<MasterMsg>,
    /// CPU seconds charged per tuple examined.
    pub cpu_tuple: f64,
    /// 0 ⇒ seed path: one sink-lock round per tuple. Non-zero ⇒ batched
    /// path: workers accumulate their whole output locally (this value
    /// seeds the buffer capacity) and settle it as one sorted run.
    pub out_batch_tuples: usize,
    /// Simulated CPU seconds accumulated before one gate acquisition
    /// (0.0 ⇒ seed path: one acquisition per compute call).
    pub cpu_batch_seconds: f64,
    /// When the fragment's memory grant is smaller than its estimated
    /// output, the spill protocol bounds each worker's buffered rows
    /// (batched path only; `None` ⇒ unbounded in-memory buffering).
    pub spill: Option<SpillSpec>,
    /// Heavy-hitter join keys (sorted ascending) a key-domain walk must
    /// *skip*: their output would serialize on whichever worker owns the
    /// key's unit, so the master computes it instead — fanned across the
    /// worker pool at materialization, with the small side replicated (see
    /// the master's hot-key path). Empty on every other fragment shape and
    /// on the seed data path.
    pub hot_keys: Vec<i32>,
}

impl FragCtx {
    fn solo(&self) -> bool {
        self.target_parallelism.load(Ordering::Relaxed) == 1
    }

    /// Whether workers should stop pulling work at the next boundary —
    /// whole-run abort or per-query cancellation, checked together at every
    /// existing checkpoint.
    pub(crate) fn stopped(&self) -> bool {
        self.aborted.load(Ordering::Relaxed) || self.cancelled.load(Ordering::Relaxed)
    }

    fn input(&self, dep: usize) -> &Materialized {
        self.inputs
            .get(&dep)
            .unwrap_or_else(|| panic!("fragment {} missing materialized input {dep}", self.gid))
    }

    fn relation<'c>(&self, catalog: &'c Catalog, rel: usize) -> &'c Relation {
        let name = &self.rels[rel].name;
        catalog
            .get(name)
            .unwrap_or_else(|| panic!("relation {name} vanished from the catalog"))
    }

    /// Record one finished unit. Completion itself is announced by the last
    /// exiting worker (see [`FragCtx::worker_exit`]), after all flushes.
    fn finish_unit(&self) {
        let done = self.units_done.fetch_add(1, Ordering::SeqCst) + 1;
        debug_assert!(done <= self.total_units);
    }

    /// Record `n` finished units in one report — the morsel path's
    /// amortized master/worker handoff (one fetch-add per morsel episode
    /// instead of one per unit).
    fn report_units(&self, n: u64) {
        if n == 0 {
            return;
        }
        let done = self.units_done.fetch_add(n, Ordering::SeqCst) + n;
        debug_assert!(done <= self.total_units);
    }

    /// One worker job has fully exited (buffers flushed). Fires the done
    /// message when it was the last live worker and all units are finished
    /// — or the fragment was cancelled, in which case the remaining units
    /// are forfeited and the last worker out still announces completion so
    /// the master can release the grant through the ordinary path.
    pub(crate) fn worker_exit(&self) {
        let remaining = self.outstanding.fetch_sub(1, Ordering::SeqCst) - 1;
        if remaining == 0
            && (self.units_done.load(Ordering::SeqCst) == self.total_units
                || self.cancelled.load(Ordering::SeqCst))
            && !self.done.swap(true, Ordering::SeqCst)
        {
            let _ = self.done_tx.send(MasterMsg::FragmentDone(self.gid));
        }
    }
}

enum Unit {
    Page(u64),
    Key(i64),
}

/// A worker's private, lock-free tuple buffer plus CPU accumulator; both
/// settle with the shared structures once per batch.
struct WorkerState<'m> {
    machine: &'m Machine,
    wid: xprs_disk::WorkerId,
    buf: Vec<(i32, Tuple)>,
    cpu_pending: f64,
    /// First unrecoverable I/O fault this worker hit, if any; set once,
    /// then every further read is skipped and the run aborts.
    io_fault: Option<IoFault>,
    /// Relation whose index a merge-indexed probe needed and did not find;
    /// set once, the run aborts, and the master surfaces it as
    /// [`ExecError::IndexMissing`](crate::master::ExecError::IndexMissing).
    index_fault: Option<String>,
    /// Per-pipeline-op merge cursors (indexed by op depth): a `MergeWith`
    /// over a CSR-indexed input advances its cursor monotonically with the
    /// worker's ascending key stream instead of re-probing from scratch.
    cursors: Vec<usize>,
    /// Sorted chunks this worker has spilled (kept resident: the executor
    /// models spill *timing*, not data placement — the write and read-back
    /// are charged to the disk array, the bytes stay addressable).
    spilled: Vec<Vec<(i32, Tuple)>>,
    /// Spill-run accounting, created on first overflow.
    spill_file: Option<SpillFile>,
}

impl<'m> WorkerState<'m> {
    fn new(machine: &'m Machine, wid: xprs_disk::WorkerId, ctx: &FragCtx) -> Self {
        WorkerState {
            machine,
            wid,
            buf: Vec::with_capacity(ctx.out_batch_tuples.max(1)),
            cpu_pending: 0.0,
            io_fault: None,
            index_fault: None,
            cursors: vec![0; ctx.program.ops.len()],
            spilled: Vec::new(),
            spill_file: None,
        }
    }

    /// Issue one page read through the retrying fault-aware path. Returns
    /// `false` when the read failed unrecoverably: the caller must stop
    /// producing from this unit, and the whole fragment is flagged to drain.
    fn read(&mut self, ctx: &FragCtx, rel: RelId, block: u64, solo: bool) -> bool {
        if self.io_fault.is_some() {
            return false;
        }
        match self.machine.try_read(rel, block, self.wid, solo) {
            Ok(_) => {
                ctx.pages_read.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(fault) => {
                self.io_fault = Some(fault);
                ctx.aborted.store(true, Ordering::Relaxed);
                false
            }
        }
    }

    /// Emit one result tuple. On the batched path this touches no shared
    /// state at all: the tuple lands in the worker-local run, which reaches
    /// the sink (sorted) only when the worker settles.
    fn emit(&mut self, ctx: &FragCtx, key: i32, tuple: Tuple) {
        if ctx.out_batch_tuples == 0 {
            ctx.out.push_contended(key, tuple);
            return;
        }
        self.buf.push((key, tuple));
        if let Some(spec) = &ctx.spill {
            if self.buf.len() >= spec.threshold_rows {
                self.spill_chunk(ctx, spec);
            }
        }
    }

    /// The grant is exhausted: the buffered chunk becomes one sorted spill
    /// run. Sorting happens now (run generation), the run's write is
    /// charged to the striped disk array, and the rows move aside so the
    /// buffer restarts empty under the same bound.
    fn spill_chunk(&mut self, ctx: &FragCtx, spec: &SpillSpec) {
        let chunk = sort_run(&mut self.buf);
        if chunk.is_empty() {
            return;
        }
        let file = self
            .spill_file
            .get_or_insert_with(|| SpillFile::new(ctx.gid as u64, self.wid.0));
        let bytes = (chunk.len() * spec.row_bytes.max(1)) as u64;
        let run = file.append(chunk.len() as u64, bytes);
        self.machine.spill_io(file.rel(), run.start, run.blocks, self.wid);
        spec.chunks.fetch_add(1, Ordering::Relaxed);
        spec.rows.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        self.spilled.push(chunk);
    }

    /// Charge simulated CPU seconds; acquires the gate only when the local
    /// accumulator crosses the batch threshold.
    fn charge_cpu(&mut self, ctx: &FragCtx, seconds: f64) {
        self.cpu_pending += seconds;
        if self.cpu_pending >= ctx.cpu_batch_seconds {
            self.settle_cpu();
        }
    }

    fn settle_cpu(&mut self) {
        if self.cpu_pending > 0.0 {
            self.machine.compute(self.cpu_pending);
            self.cpu_pending = 0.0;
        }
    }

    /// Flush everything outstanding (end of the worker's run): the local
    /// output becomes one sorted run in the sink — or, when the worker
    /// spilled, its spill runs are read back (charged as sequential spill
    /// I/O) and handed over together with the final in-memory chunk, in
    /// cut order, as one contiguous block of runs.
    fn settle(&mut self, ctx: &FragCtx) {
        self.settle_cpu();
        if self.spilled.is_empty() {
            ctx.out.push_run(&mut self.buf);
            return;
        }
        // Read-back for the merge: the k-way merge consumes each run in
        // key order — a sequential sweep over the run's striped blocks.
        if let Some(file) = &self.spill_file {
            for run in file.runs() {
                self.machine.spill_io(file.rel(), run.start, run.blocks, self.wid);
            }
        }
        let mut runs = mem::take(&mut self.spilled);
        let last = sort_run(&mut self.buf);
        runs.push(last);
        ctx.out.push_runs(runs);
    }
}

/// Worker main loop for slot `slot` of the fragment.
///
/// The caller (the pool job wrapper in `master.rs`) is responsible for
/// calling [`FragCtx::worker_exit`] afterwards — also on panic — so the
/// completion protocol stays balanced.
pub(crate) fn run_worker(
    ctx: &Arc<FragCtx>,
    slot: usize,
    machine: &Machine,
    catalog: &Catalog,
) {
    let wid = machine.new_worker_id();
    let mut ws = WorkerState::new(machine, wid, ctx);
    let heartbeat = {
        let mut beats = lock(&ctx.heartbeats);
        while beats.len() <= slot {
            beats.push(Arc::new(AtomicU64::new(0)));
        }
        beats[slot].clone()
    };
    heartbeat.fetch_add(1, Ordering::Relaxed);
    // The partition variant never changes after staffing: discover it once
    // and dispatch. The morsel path takes the fragment mutex exactly this
    // once; the static paths keep taking it per unit, as the seed did.
    let stealing = {
        let p = lock(&ctx.partition);
        match &*p {
            PartitionState::Morsel { part, key_base } => Some((part.clone(), *key_base)),
            _ => None,
        }
    };
    if let Some((part, key_base)) = stealing {
        if run_morsel_worker(ctx, slot, machine, catalog, &mut ws, &heartbeat, &part, key_base) {
            return; // injected death: vanish without registering the exit
        }
        worker_epilogue(ctx, slot, &mut ws);
        return;
    }
    let mut my_units = 0u64;
    loop {
        if ctx.stopped() {
            break;
        }
        // Injected worker faults fire at unit boundaries: a pulled unit is
        // always completed before the next pull, so a death here never
        // leaves a unit half-done — its cursor cleanly separates finished
        // work from the obligation the master will reclaim.
        if let Some(plan) = machine.fault_plan() {
            match plan.take_worker_fault(ctx.gid, slot, my_units) {
                Some(WorkerFaultKind::Death) => {
                    // Completed units live in shared memory and survive the
                    // worker (flush them), but the slot vanishes without
                    // registering in `exited_slots`: its heartbeat freezes
                    // and the patrol declares it dead.
                    ws.settle(ctx);
                    return;
                }
                Some(WorkerFaultKind::Stall { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                None => {}
            }
        }
        let unit = {
            let mut p = lock(&ctx.partition);
            match &mut *p {
                PartitionState::Page(pp) => pp.next_page(slot).map(Unit::Page),
                PartitionState::Range(rp) => rp.next_key(slot).map(Unit::Key),
                PartitionState::Morsel { .. } => unreachable!("dispatched above"),
            }
        };
        let Some(unit) = unit else { break };
        match unit {
            Unit::Page(page) => scan_page(ctx, catalog, page, &mut ws),
            Unit::Key(key) => scan_key(ctx, catalog, key, &mut ws),
        }
        ctx.finish_unit();
        my_units += 1;
        heartbeat.fetch_add(1, Ordering::Relaxed);
    }
    worker_epilogue(ctx, slot, &mut ws);
}

/// Shared worker exit path: flush the local run, surface any recorded
/// faults, and register the voluntary exit (so the patrol never reaps it).
fn worker_epilogue(ctx: &Arc<FragCtx>, slot: usize, ws: &mut WorkerState<'_>) {
    ws.settle(ctx);
    if let Some(fault) = ws.io_fault.take() {
        let _ = ctx.done_tx.send(MasterMsg::IoFault { gid: ctx.gid, fault });
    }
    if let Some(name) = ws.index_fault.take() {
        let _ = ctx.done_tx.send(MasterMsg::IndexMissing { gid: ctx.gid, name });
    }
    lock(&ctx.exited_slots).push(slot);
}

/// Morsel-driven worker loop: claim a morsel (own deque, else steal),
/// claim its units one CAS at a time, and settle the completion ledger
/// **once per morsel** instead of once per unit. Returns `true` when an
/// injected death fired — the caller vanishes without registering an exit,
/// so the heartbeat patrol detects the corpse and reclaims the morsel's
/// unclaimed remainder through [`StealPartition::fail_slot`].
#[allow(clippy::too_many_arguments)]
fn run_morsel_worker(
    ctx: &Arc<FragCtx>,
    slot: usize,
    machine: &Machine,
    catalog: &Catalog,
    ws: &mut WorkerState<'_>,
    heartbeat: &Arc<AtomicU64>,
    part: &StealPartition,
    key_base: i64,
) -> bool {
    let metrics = machine.metrics().cloned();
    let claim = part.claim_of(slot);
    let mut my_units = 0u64;
    let mut batch = 0u64; // units finished but not yet reported
    // Enabled-metrics cost discipline: steal/fail *counts* accumulate in
    // worker-local integers and flush to the shared registry once at exit
    // (they stay exact); the latency histograms are *sampled* — one morsel
    // episode in `MORSEL_SAMPLE` pays the clock reads and shared-histogram
    // RMWs, the rest touch nothing shared. On a single-core host every
    // vdso clock read and cache-line RMW is serial wall time, and the obs
    // overhead gate holds the whole enabled path to ~2% of scan wall.
    let mut episodes = 0u64;
    let mut loc_steals = 0u64;
    let mut loc_fails = 0u64;
    'morsels: loop {
        if ctx.stopped() {
            break;
        }
        let sampled = metrics.is_some() && episodes.is_multiple_of(MORSEL_SAMPLE);
        episodes += 1;
        let t_search = if sampled { Some(Instant::now()) } else { None };
        let Some(next) = part.next_morsel(slot) else {
            loc_fails += 1;
            if let (Some(m), Some(t0)) = (&metrics, t_search) {
                m.steal_idle_ns.observe(t0.elapsed().as_nanos() as u64);
            }
            break;
        };
        let mut morsel_t0 = t_search;
        if next.stolen_from.is_some() {
            loc_steals += 1;
            if let (Some(m), Some(t0)) = (&metrics, t_search) {
                let t1 = Instant::now();
                m.steal_idle_ns.observe(t1.duration_since(t0).as_nanos() as u64);
                morsel_t0 = Some(t1);
            }
        }
        loop {
            if ctx.stopped() {
                break;
            }
            // Faults fire at unit boundaries, exactly as on the static
            // path: a death leaves no unit half-done, and the units this
            // incarnation claimed are flushed and reported before it
            // vanishes — the patrol reclaims only what was never claimed.
            if let Some(plan) = machine.fault_plan() {
                match plan.take_worker_fault(ctx.gid, slot, my_units) {
                    Some(WorkerFaultKind::Death) => {
                        ctx.report_units(batch);
                        ws.settle(ctx);
                        flush_steal_counts(&metrics, loc_steals, loc_fails);
                        return true;
                    }
                    Some(WorkerFaultKind::Stall { millis }) => {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    None => {}
                }
            }
            let Some(unit) = StealPartition::claim_unit(&claim) else {
                break; // morsel exhausted or slot revoked: back to the deques
            };
            match ctx.program.driver {
                Driver::PageScan { .. } => scan_page(ctx, catalog, unit, ws),
                Driver::KeyScan { .. } | Driver::KeyDomain => {
                    scan_key(ctx, catalog, key_base + unit as i64, ws);
                }
            }
            my_units += 1;
            batch += 1;
            heartbeat.fetch_add(1, Ordering::Relaxed);
        }
        // Amortized handoff: one completion report per morsel episode.
        ctx.report_units(batch);
        batch = 0;
        if let (Some(m), Some(t0)) = (&metrics, morsel_t0) {
            m.morsel_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        if ctx.stopped() {
            break 'morsels;
        }
    }
    ctx.report_units(batch);
    flush_steal_counts(&metrics, loc_steals, loc_fails);
    false
}

/// Latency-histogram sampling rate on the morsel path: one episode in this
/// many reads the clock and touches the shared histograms. The steal/fail
/// counters are exact regardless — they accumulate locally and flush here.
const MORSEL_SAMPLE: u64 = 8;

fn flush_steal_counts(metrics: &Option<Arc<ExecMetrics>>, steals: u64, fails: u64) {
    if let Some(m) = metrics {
        if steals > 0 {
            m.steals.add(steals);
        }
        if fails > 0 {
            m.steal_fails.add(fails);
        }
    }
}

/// Page-scan driver: read one heap page, filter, run the pipeline.
fn scan_page(ctx: &FragCtx, catalog: &Catalog, page: u64, ws: &mut WorkerState<'_>) {
    let Driver::PageScan { rel } = ctx.program.driver else {
        unreachable!("page unit on a non-page driver");
    };
    let relation = ctx.relation(catalog, rel);
    if !ws.read(ctx, relation.heap.rel(), page, ctx.solo()) {
        return;
    }
    let p = relation.heap.page(page);
    ws.charge_cpu(ctx, p.n_tuples() as f64 * ctx.cpu_tuple);
    for (_, tuple) in p.iter() {
        let Some(key) = tuple.get(0).as_int() else { continue };
        if ctx.rels[rel].admits(key) {
            pipeline(ctx, catalog, key, tuple.clone(), 0, ws);
        }
    }
}

/// Key driver: one key of a range-partitioned index scan or key-domain walk.
fn scan_key(ctx: &FragCtx, catalog: &Catalog, key: i64, ws: &mut WorkerState<'_>) {
    let key = key as i32;
    match ctx.program.driver {
        Driver::KeyScan { rel } => {
            let relation = ctx.relation(catalog, rel);
            let idx = relation
                .index_on_a
                .as_ref()
                .unwrap_or_else(|| panic!("index scan over unindexed {}", relation.name));
            let postings = idx.lookup(key);
            ws.charge_cpu(ctx, postings.len().max(1) as f64 * ctx.cpu_tuple);
            for &tid in postings {
                // Unclustered posting dereference: a random heap-page read.
                if !ws.read(ctx, relation.heap.rel(), tid.block, false) {
                    return;
                }
                let tuple = relation
                    .heap
                    .fetch(tid)
                    .unwrap_or_else(|| panic!("dangling tid {tid} in {}", relation.name))
                    .clone();
                pipeline(ctx, catalog, key, tuple, 0, ws);
            }
        }
        Driver::KeyDomain => {
            ws.charge_cpu(ctx, ctx.cpu_tuple);
            // Heavy hitters are the master's job (replicated, pool-fanned
            // at materialization); emitting one here would pin the key's
            // whole output on this worker. The unit still completes
            // normally, so heartbeats, stealing, and cancellation see
            // nothing unusual.
            if ctx.hot_keys.binary_search(&key).is_ok() {
                return;
            }
            pipeline(ctx, catalog, key, Tuple::from_values(vec![]), 0, ws);
        }
        Driver::PageScan { .. } => unreachable!("key unit on a page driver"),
    }
}

/// Apply pipeline operators `depth..` to `(key, tuple)`.
fn pipeline(
    ctx: &FragCtx,
    catalog: &Catalog,
    key: i32,
    tuple: Tuple,
    depth: usize,
    ws: &mut WorkerState<'_>,
) {
    let Some(op) = ctx.program.ops.get(depth) else {
        ws.emit(ctx, key, tuple);
        return;
    };
    match op {
        PipelineOp::ProbeHash { dep } => {
            for row in ctx.input(*dep).matches(key) {
                pipeline(ctx, catalog, key, tuple.join(row), depth + 1, ws);
            }
        }
        PipelineOp::MergeWith { dep } => {
            // True cursor-based merge: this worker's driver (key scan or
            // key-domain walk) hands out ascending keys, so the input's
            // cursor advances monotonically instead of re-probing per key.
            let input = ctx.input(*dep);
            let mut cursor = ws.cursors[depth];
            let matched = input.matches_from(key, &mut cursor);
            ws.cursors[depth] = cursor;
            for row in matched {
                pipeline(ctx, catalog, key, tuple.join(row), depth + 1, ws);
            }
        }
        PipelineOp::NestInner { dep } => {
            // A genuine nested loop: every inner row is examined.
            let inner = ctx.input(*dep);
            ws.charge_cpu(ctx, inner.rows.len() as f64 * ctx.cpu_tuple * 0.1);
            for (k2, row) in &inner.rows {
                if *k2 == key {
                    pipeline(ctx, catalog, key, tuple.join(row), depth + 1, ws);
                }
            }
        }
        PipelineOp::MergeIndexed { rel } => {
            if !ctx.rels[*rel].admits(key) {
                return;
            }
            let relation = ctx.relation(catalog, *rel);
            let Some(idx) = relation.index_on_a.as_ref() else {
                // A merge-indexed probe over an unindexed relation is a
                // planning/catalog mismatch, not a worker bug: record it
                // once, flag the fragment to drain, and let the master
                // surface the typed error.
                if ws.index_fault.is_none() {
                    ws.index_fault = Some(relation.name.clone());
                }
                ctx.aborted.store(true, Ordering::Relaxed);
                return;
            };
            for &tid in idx.lookup(key) {
                if !ws.read(ctx, relation.heap.rel(), tid.block, false) {
                    return;
                }
                let row = relation
                    .heap
                    .fetch(tid)
                    .unwrap_or_else(|| panic!("dangling tid {tid} in {}", relation.name))
                    .clone();
                pipeline(ctx, catalog, key, tuple.join(&row), depth + 1, ws);
            }
        }
    }
}
