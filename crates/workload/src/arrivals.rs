//! Open-loop arrival generation for the continuous query service.
//!
//! A service benchmark that waits for one query to finish before sending
//! the next (closed-loop) can never observe overload: the client
//! self-throttles exactly when the server is slowest, hiding queueing
//! delay — the *coordinated omission* trap. The service experiments
//! instead use an **open-loop** arrival process: every tenant submits on
//! its own Poisson clock regardless of how the service is doing, so
//! sustained overload actually accumulates queue depth and the shedding
//! and deadline machinery gets exercised.
//!
//! The whole schedule is a pure function of the spec (seeded, tenant- and
//! class-salted LCG → exponential interarrivals), so a run can be replayed
//! bit-for-bit and CI can gate on exact shed/admit counts.

/// What kind of query a tenant submits. This is the *service-level* class
/// (latency expectation, deadline, queue priority) — not to be confused
/// with [`xprs_disk::ServiceClass`], which classifies individual disk
/// requests by access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Short lookup over a narrow key range: a human is waiting, so it
    /// carries a tight deadline and a p99 expectation near its p50.
    Interactive,
    /// Long scan over most of a relation: throughput matters, latency
    /// tolerance is generous.
    Batch,
}

impl QueryClass {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Batch => "batch",
        }
    }
}

/// One tenant's offered load, in queries per simulated second per class.
/// A rate of 0 disables that class for the tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantLoad {
    /// Interactive lookups per second.
    pub interactive_qps: f64,
    /// Batch scans per second.
    pub batch_qps: f64,
}

/// The arrival schedule spec: who offers how much load for how long.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// Master seed; the schedule is a pure function of the spec.
    pub seed: u64,
    /// Schedule horizon in seconds — arrivals strictly before this.
    pub horizon: f64,
    /// Per-tenant offered load; index is the tenant id.
    pub tenants: Vec<TenantLoad>,
}

/// One scheduled submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Seconds from schedule start.
    pub at: f64,
    /// Index into [`ArrivalSpec::tenants`].
    pub tenant: u32,
    /// Service class of the submission.
    pub class: QueryClass,
    /// Position in the merged schedule (0-based), assigned after the merge
    /// so it is stable across replays.
    pub seq: u64,
}

/// Multiplicative-congruential step (Steele & Vigna's LCG constants for a
/// 64-bit state); the top bits feed the uniform draw.
pub(crate) fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(0xd120_2e4f_a0d8_1645).wrapping_add(0x2545_f491_4f6c_dd1d);
    *state
}

/// Uniform in `[0, 1)` from the high 53 bits.
pub(crate) fn uniform(state: &mut u64) -> f64 {
    (lcg_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential interarrival with the given rate (events per second).
fn exp_interarrival(state: &mut u64, rate: f64) -> f64 {
    // 1 - u is in (0, 1], so ln() is finite and the gap strictly positive.
    -(1.0 - uniform(state)).ln() / rate
}

/// Generate the merged, time-ordered arrival schedule for `spec`.
///
/// Each `(tenant, class)` pair runs an independent Poisson process with a
/// seed salted by tenant id and class, so adding a tenant or changing one
/// tenant's rate never perturbs another tenant's arrival times.
pub fn generate_arrivals(spec: &ArrivalSpec) -> Vec<Arrival> {
    let mut out = Vec::new();
    for (tenant, load) in spec.tenants.iter().enumerate() {
        for (class, rate) in [
            (QueryClass::Interactive, load.interactive_qps),
            (QueryClass::Batch, load.batch_qps),
        ] {
            if rate <= 0.0 {
                continue;
            }
            let salt = match class {
                QueryClass::Interactive => 0x1A7E_u64,
                QueryClass::Batch => 0xBA7C_u64,
            };
            let mut state = spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((tenant as u64) << 17)
                .wrapping_add(salt);
            // Warm the state so nearby seeds decorrelate.
            lcg_next(&mut state);
            let mut t = 0.0f64;
            loop {
                t += exp_interarrival(&mut state, rate);
                if t >= spec.horizon {
                    break;
                }
                out.push(Arrival { at: t, tenant: tenant as u32, class, seq: 0 });
            }
        }
    }
    // Total order even under float ties: break by tenant, then class.
    out.sort_by(|a, b| {
        a.at.partial_cmp(&b.at)
            .expect("arrival times are finite")
            .then(a.tenant.cmp(&b.tenant))
            .then((a.class == QueryClass::Batch).cmp(&(b.class == QueryClass::Batch)))
    });
    for (i, a) in out.iter_mut().enumerate() {
        a.seq = i as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArrivalSpec {
        ArrivalSpec {
            seed: 42,
            horizon: 100.0,
            tenants: vec![
                TenantLoad { interactive_qps: 5.0, batch_qps: 0.5 },
                TenantLoad { interactive_qps: 2.0, batch_qps: 0.0 },
            ],
        }
    }

    #[test]
    fn schedule_is_deterministic_and_time_ordered() {
        let a = generate_arrivals(&spec());
        let b = generate_arrivals(&spec());
        assert_eq!(a, b, "same spec must replay bit-for-bit");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "must be time-ordered");
        assert!(a.iter().enumerate().all(|(i, x)| x.seq == i as u64));
        assert!(a.iter().all(|x| x.at >= 0.0 && x.at < 100.0));
    }

    #[test]
    fn rates_come_out_near_the_offered_load() {
        let arrivals = generate_arrivals(&spec());
        let count = |tenant: u32, class: QueryClass| {
            arrivals.iter().filter(|a| a.tenant == tenant && a.class == class).count() as f64
        };
        // Poisson(rate * horizon): mean 500, sd ~22 — a 4-sigma band.
        let n = count(0, QueryClass::Interactive);
        assert!((410.0..=590.0).contains(&n), "tenant 0 interactive: {n}");
        let n = count(0, QueryClass::Batch); // mean 50, sd ~7
        assert!((20.0..=80.0).contains(&n), "tenant 0 batch: {n}");
        assert_eq!(count(1, QueryClass::Batch), 0.0, "rate 0 must mean no arrivals");
    }

    #[test]
    fn tenants_are_independent_processes() {
        // Dropping tenant 1 must not move tenant 0's arrival times.
        let full = generate_arrivals(&spec());
        let mut solo_spec = spec();
        solo_spec.tenants.truncate(1);
        let solo = generate_arrivals(&solo_spec);
        let t0_times: Vec<f64> =
            full.iter().filter(|a| a.tenant == 0).map(|a| a.at).collect();
        let solo_times: Vec<f64> = solo.iter().map(|a| a.at).collect();
        assert_eq!(t0_times, solo_times);
    }
}
