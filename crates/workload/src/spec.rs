//! Workload configurations (plain data, for reproducible experiments).

/// The four Section 3 workload classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// All tasks CPU-bound: rates uniform in `[5, 30)`.
    AllCpu,
    /// All tasks IO-bound: rates uniform in `(30, 60]`.
    AllIo,
    /// Half extremely CPU-bound `[5, 15]`, half extremely IO-bound `[60, 70]`.
    Extreme,
    /// Rates uniform across the whole `[5, 70]` span.
    RandomMix,
}

impl WorkloadKind {
    /// All four classes, in the paper's Figure 7 order.
    pub fn all() -> [WorkloadKind; 4] {
        [WorkloadKind::AllCpu, WorkloadKind::AllIo, WorkloadKind::Extreme, WorkloadKind::RandomMix]
    }

    /// Display label matching the figure.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::AllCpu => "AllCPU",
            WorkloadKind::AllIo => "AllIO",
            WorkloadKind::Extreme => "Extreme",
            WorkloadKind::RandomMix => "Random",
        }
    }

    /// Draw an I/O rate for task number `i` given uniform samples `u`
    /// (both in `[0, 1)`).
    pub fn rate(&self, i: usize, u: f64) -> f64 {
        match self {
            WorkloadKind::AllCpu => 5.0 + 25.0 * u,
            WorkloadKind::AllIo => 30.0 + 1e-6 + (30.0 - 1e-6) * u,
            WorkloadKind::Extreme => {
                if i.is_multiple_of(2) {
                    5.0 + 10.0 * u
                } else {
                    60.0 + 10.0 * u
                }
            }
            WorkloadKind::RandomMix => 5.0 + 65.0 * u,
        }
    }
}

/// How task lengths are drawn.
///
/// The paper draws 100–10 000 *tuples* per task. Taken literally with
/// page-filling tuples that yields single tasks of over two minutes — far
/// beyond the ~40 s whole-workload turnarounds Figure 7 reports — and makes
/// workload elapsed time dominated by one giant IO-bound scan rather than
/// by scheduling. The default therefore draws each task's *sequential
/// duration* uniformly in the 2–20 s range the figure implies and converts
/// it to a tuple count at the task's rate; the literal tuple-count model
/// remains available as [`WorkloadConfig::paper_tuple_lengths`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Uniform tuple count (the paper's literal text).
    Tuples {
        /// Minimum tuples scanned.
        min: u64,
        /// Maximum tuples scanned.
        max: u64,
    },
    /// Uniform sequential duration, seconds.
    SeqTime {
        /// Minimum `T_i`.
        min: f64,
        /// Maximum `T_i`.
        max: f64,
    },
}

/// A reproducible workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Class of I/O rates.
    pub kind: WorkloadKind,
    /// Number of tasks (the paper uses 10).
    pub n_tasks: usize,
    /// Task-length model.
    pub length: LengthModel,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The Figure 7 setup: ten tasks, durations uniform in 2–20 s.
    pub fn paper(kind: WorkloadKind, seed: u64) -> Self {
        WorkloadConfig { kind, n_tasks: 10, length: LengthModel::SeqTime { min: 2.0, max: 20.0 }, seed }
    }

    /// The paper's literal task-length text: 100–10 000 tuples.
    pub fn paper_tuple_lengths(kind: WorkloadKind, seed: u64) -> Self {
        WorkloadConfig { kind, n_tasks: 10, length: LengthModel::Tuples { min: 100, max: 10_000 }, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_stay_inside_their_class_ranges() {
        for kind in WorkloadKind::all() {
            for i in 0..10 {
                for u in [0.0, 0.25, 0.5, 0.9999] {
                    let r = kind.rate(i, u);
                    match kind {
                        WorkloadKind::AllCpu => assert!((5.0..30.0).contains(&r)),
                        WorkloadKind::AllIo => assert!(r > 30.0 && r <= 60.0),
                        WorkloadKind::Extreme => {
                            assert!((5.0..=15.0).contains(&r) || (60.0..=70.0).contains(&r))
                        }
                        WorkloadKind::RandomMix => assert!((5.0..=70.0).contains(&r)),
                    }
                }
            }
        }
    }

    #[test]
    fn extreme_alternates_classes() {
        let k = WorkloadKind::Extreme;
        assert!(k.rate(0, 0.5) < 30.0);
        assert!(k.rate(1, 0.5) > 30.0);
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = WorkloadConfig::paper(WorkloadKind::Extreme, 42);
        assert_eq!(cfg.n_tasks, 10);
        assert_eq!(cfg.length, LengthModel::SeqTime { min: 2.0, max: 20.0 });
        let literal = WorkloadConfig::paper_tuple_lengths(WorkloadKind::Extreme, 42);
        assert_eq!(literal.length, LengthModel::Tuples { min: 100, max: 10_000 });
        // A config must be cloneable and comparable for experiment logs.
        assert_eq!(cfg, cfg.clone());
    }

    #[test]
    fn labels_match_figure_seven() {
        let labels: Vec<&str> = WorkloadKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["AllCPU", "AllIO", "Extreme", "Random"]);
    }
}
