//! Seeded Zipfian / heavy-hitter join workloads.
//!
//! The scaling and memory workloads (`gen.rs`) draw join keys uniformly, so
//! every key carries ~`n / key_domain` rows and the range-partitioned merge
//! machinery never meets a key it cannot split around. Real key
//! distributions are not so kind: under a Zipfian law a handful of keys
//! carry most of the rows, and the *join output* concentrates even harder —
//! a key with probability `p` on both sides owns `~p²` of the output. One
//! such key used to serialize the k-way merge (see `runs.rs` and ROADMAP's
//! skew item); these generators exist to prove it no longer does.
//!
//! Like every generator in this crate, the workload is a **pure function of
//! its spec**: keys come from a salted multiplicative LCG (the `arrivals.rs`
//! stream) pushed through the inverse CDF of the Zipf(θ) law, so two loads
//! of the same spec produce byte-identical relations — the parity tests
//! lean on that for bit-exact replay.
//!
//! θ = 0 degenerates to the uniform draw; θ = 1 is the classic Zipf where
//! the hottest of `K` keys holds `1 / H_K ≈ 1 / ln K` of the mass.

use xprs_storage::{Catalog, Datum, Tuple};

use crate::arrivals::{lcg_next, uniform};
use crate::gen::dense_tuples_per_page;

/// Spec for one Zipf-distributed hash-join pair: a thin build side and a
/// disk-resident probe side (`bufpool_pages × spill_factor` heap pages, so
/// an 8-worker scan cannot hide in the buffer pool), both drawing keys from
/// `Zipf(theta)` over `[0, key_domain)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfJoinSpec {
    /// Master seed; every derived stream salts it differently.
    pub seed: u64,
    /// Zipf exponent θ ≥ 0 (0 = uniform). The paper-style sweeps use
    /// θ ∈ {0, 0.5, 1.0}.
    pub theta: f64,
    /// Keys are drawn from `[0, key_domain)`, rank 0 hottest.
    pub key_domain: u64,
    /// Tuples on the (small, replicable) build side.
    pub build_tuples: u64,
    /// `b`-attribute length of build tuples.
    pub build_blen: usize,
    /// Buffer-pool capacity the probe side must overflow.
    pub bufpool_pages: u64,
    /// Probe heap pages as a multiple of the pool (the paper's 4–16×
    /// disk-resident regime).
    pub spill_factor: u64,
    /// `b`-attribute length of probe tuples (sets tuples per page).
    pub probe_blen: usize,
}

impl ZipfJoinSpec {
    /// The configuration the skew bench sweeps: 10 000-key domain, 1 000
    /// build tuples, dense probe pages at `spill_factor ×` the pool.
    pub fn paper(theta: f64, bufpool_pages: u64, spill_factor: u64, seed: u64) -> Self {
        ZipfJoinSpec {
            seed,
            theta,
            key_domain: 10_000,
            build_tuples: 1_000,
            build_blen: 8,
            bufpool_pages,
            spill_factor,
            probe_blen: 120,
        }
    }
}

/// A generated Zipf join pair, ready to load.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfJoinWorkload {
    /// The generating spec.
    pub spec: ZipfJoinSpec,
    /// Catalog name of the build relation.
    pub build: String,
    /// Catalog name of the probe relation.
    pub probe: String,
    /// Probe heap pages (`bufpool_pages × spill_factor`).
    pub probe_pages: u64,
    /// Probe tuples (pages packed dense).
    pub probe_tuples: u64,
    /// Probe tuples per page.
    pub tuples_per_page: u64,
}

impl ZipfJoinWorkload {
    /// Create and bulk-load both relations into `catalog`. Rows are a pure
    /// function of the spec, so two loads see byte-identical relations.
    pub fn load_into(&self, catalog: &mut Catalog) {
        let s = &self.spec;
        for (name, n, blen, salt) in [
            (&self.build, s.build_tuples, s.build_blen, 0xB01D_u64),
            (&self.probe, self.probe_tuples, s.probe_blen, 0x50B3_u64),
        ] {
            catalog.create(name, xprs_storage::Schema::paper_rel());
            let rows: Vec<Tuple> = zipf_keys(s.seed ^ salt, s.theta, s.key_domain, n)
                .into_iter()
                .map(|a| {
                    Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
                })
                .collect();
            catalog.load(name, rows);
        }
    }
}

/// Generate the relation pair of `spec`. Deterministic per spec; panics if
/// the spill factor falls outside the paper's 4–16× disk-resident range or
/// θ is out of the supported `[0, 2]` band.
pub fn generate_zipf_join(spec: &ZipfJoinSpec) -> ZipfJoinWorkload {
    assert!(
        (4..=16).contains(&spec.spill_factor),
        "spill factor {} outside the paper's 4-16x range",
        spec.spill_factor
    );
    assert!(spec.bufpool_pages >= 1 && spec.build_tuples >= 1);
    let tuples_per_page = dense_tuples_per_page(spec.probe_blen);
    let probe_pages = spec.bufpool_pages * spec.spill_factor;
    // θ is validated (with key_domain) inside zipf_keys; probing the
    // validation here keeps a bad spec from naming relations first.
    let theta_permille = zipf_theta_permille(spec.theta);
    ZipfJoinWorkload {
        spec: spec.clone(),
        build: format!("zipf_{}_{}_b", spec.seed, theta_permille),
        probe: format!("zipf_{}_{}_p", spec.seed, theta_permille),
        probe_pages,
        probe_tuples: probe_pages * tuples_per_page,
        tuples_per_page,
    }
}

/// θ as an exact integer tag for relation names (and a validation choke
/// point: θ must be finite and in `[0, 2]`).
fn zipf_theta_permille(theta: f64) -> u64 {
    assert!(
        theta.is_finite() && (0.0..=2.0).contains(&theta),
        "zipf theta {theta} outside [0, 2]"
    );
    (theta * 1000.0).round() as u64
}

/// Draw `n` keys from `Zipf(theta)` over `[0, key_domain)` — rank 0 is the
/// hottest key — using a salted LCG stream and the inverse CDF over the
/// precomputed cumulative weights `k^{-θ}`. Pure function of the arguments;
/// θ = 0 is the uniform draw.
pub fn zipf_keys(seed: u64, theta: f64, key_domain: u64, n: u64) -> Vec<i32> {
    zipf_theta_permille(theta);
    assert!(
        key_domain >= 1 && key_domain <= i32::MAX as u64,
        "key domain {key_domain} outside [1, i32::MAX]"
    );
    let mut cum: Vec<f64> = Vec::with_capacity(key_domain as usize);
    let mut mass = 0.0f64;
    for k in 0..key_domain {
        mass += 1.0 / ((k + 1) as f64).powf(theta);
        cum.push(mass);
    }
    // Same seeding discipline as the arrival streams: spread the salted
    // seed with the golden-ratio multiplier, then warm the state once so
    // nearby seeds decorrelate.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    lcg_next(&mut state);
    (0..n)
        .map(|_| {
            let u = uniform(&mut state) * mass;
            let idx = cum.partition_point(|&c| c <= u);
            idx.min(key_domain as usize - 1) as i32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_disk::StripedLayout;

    fn counts(keys: &[i32], key_domain: usize) -> Vec<usize> {
        let mut c = vec![0usize; key_domain];
        for &k in keys {
            c[k as usize] += 1;
        }
        c
    }

    #[test]
    fn replay_is_bit_exact_and_seeds_are_independent() {
        let a = zipf_keys(42, 1.0, 1000, 5000);
        let b = zipf_keys(42, 1.0, 1000, 5000);
        assert_eq!(a, b, "same spec must replay bit-exactly");
        let c = zipf_keys(43, 1.0, 1000, 5000);
        assert_ne!(a, c, "different seeds must differ");
        let w1 = generate_zipf_join(&ZipfJoinSpec::paper(0.5, 64, 4, 7));
        let w2 = generate_zipf_join(&ZipfJoinSpec::paper(0.5, 64, 4, 7));
        assert_eq!(w1, w2);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let keys = zipf_keys(9, 0.0, 100, 20_000);
        let c = counts(&keys, 100);
        assert!(c.iter().all(|&n| n > 0), "every key must appear");
        let max = *c.iter().max().unwrap();
        assert!(max < 3 * (20_000 / 100), "uniform draw has no heavy hitter, max {max}");
    }

    #[test]
    fn theta_one_concentrates_on_the_head() {
        // Zipf(1) over 10^4 keys: the hottest key holds 1/H ≈ 10.2% of the
        // mass; allow generous sampling slack around it.
        let n = 40_000usize;
        let keys = zipf_keys(11, 1.0, 10_000, n as u64);
        let c = counts(&keys, 10_000);
        let share = c[0] as f64 / n as f64;
        assert!((0.06..=0.15).contains(&share), "hot-key share {share}");
        assert!(c[0] > 20 * c[999].max(1), "head must dominate rank 1000");
    }

    #[test]
    fn loaded_relations_realize_the_page_math() {
        let spec = ZipfJoinSpec::paper(1.0, 16, 4, 3);
        let w = generate_zipf_join(&spec);
        let mut cat = Catalog::new(StripedLayout::new(4));
        w.load_into(&mut cat);
        let probe = cat.get(&w.probe).expect("probe loaded").stats();
        assert_eq!(probe.n_tuples, w.probe_tuples);
        assert_eq!(probe.n_blocks, w.probe_pages, "dense pages must pack exactly");
        assert_eq!(w.probe_pages, 64, "16 pool pages x 4 spill factor");
        let build = cat.get(&w.build).expect("build loaded").stats();
        assert_eq!(build.n_tuples, spec.build_tuples);
        // Both sides draw from the same domain, so the join has matches.
        assert!(probe.min_a >= 0 && (probe.max_a as u64) < spec.key_domain);
    }

    #[test]
    #[should_panic(expected = "spill factor")]
    fn cached_probe_side_is_rejected() {
        generate_zipf_join(&ZipfJoinSpec::paper(1.0, 64, 2, 3));
    }

    #[test]
    #[should_panic(expected = "outside [0, 2]")]
    fn negative_theta_is_rejected() {
        zipf_keys(1, -0.5, 100, 10);
    }
}
