//! Task and relation generation.
//!
//! Each generated task scans its own relation (distinct relations make the
//! disk-head interference between co-scheduled tasks real). The generator
//! produces both the scheduler-facing [`TaskProfile`] and a relation
//! specification that, when loaded into a catalog, *realizes* that profile
//! on the executor — so the same workload drives the analytic model, the
//! discrete-event simulator and the threaded executor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xprs_scheduler::{IoKind, TaskId, TaskProfile};
use xprs_storage::{Catalog, Datum, Tuple};

use crate::calibrate::Calibration;
use crate::spec::{LengthModel, WorkloadConfig};

/// One generated task.
#[derive(Debug, Clone)]
pub struct GeneratedTask {
    /// Scheduler-facing profile.
    pub profile: TaskProfile,
    /// Name of the backing relation.
    pub relation: String,
    /// Tuples in the relation.
    pub n_tuples: u64,
    /// `b`-attribute length realizing the I/O rate.
    pub blen: usize,
    /// Heap pages the scan will read.
    pub n_pages: u64,
}

/// A complete generated workload.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The configuration that produced it.
    pub config: WorkloadConfig,
    /// Tasks in generation order.
    pub tasks: Vec<GeneratedTask>,
}

impl GeneratedWorkload {
    /// The task profiles, for driving schedulers and simulators.
    pub fn profiles(&self) -> Vec<TaskProfile> {
        self.tasks.iter().map(|t| t.profile.clone()).collect()
    }

    /// Create and bulk-load every backing relation into `catalog`.
    pub fn load_into(&self, catalog: &mut Catalog) {
        for t in &self.tasks {
            catalog.create(&t.relation, xprs_storage::Schema::paper_rel());
            let rows = (0..t.n_tuples).map(|i| {
                Tuple::from_values(vec![
                    Datum::Int((i % 1000) as i32),
                    Datum::Text("x".repeat(t.blen)),
                ])
            });
            catalog.load(&t.relation, rows);
        }
    }
}

/// The workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    calibration: Calibration,
}

impl WorkloadGenerator {
    /// Generator with the paper calibration.
    pub fn new() -> Self {
        WorkloadGenerator { calibration: Calibration::paper_default() }
    }

    /// Generate the tasks of `config`. Deterministic per seed.
    pub fn generate(&self, config: &WorkloadConfig) -> GeneratedWorkload {
        assert!(config.n_tasks >= 1, "empty workload");
        if let LengthModel::Tuples { min, max } = config.length {
            assert!(min >= 1 && min <= max, "bad tuple-length bounds");
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tasks = Vec::with_capacity(config.n_tasks);
        for i in 0..config.n_tasks {
            let target_rate = config.kind.rate(i, rng.random::<f64>());
            let blen = self.calibration.blen_for_rate(target_rate);
            // The realized rate is quantized by whole tuples-per-page; use
            // it (not the target) so the profile matches the physical task.
            let rate = self.calibration.rate(blen);
            let tpp = self.calibration.tuples_per_page(blen);
            let (n_tuples, n_pages) = match config.length {
                LengthModel::Tuples { min, max } => {
                    let n_tuples = rng.random_range(min..=max);
                    (n_tuples, n_tuples.div_ceil(tpp))
                }
                LengthModel::SeqTime { min, max } => {
                    let t = rng.random_range(min..=max);
                    let n_pages = ((t * rate).round() as u64).max(1);
                    (n_pages * tpp, n_pages)
                }
            };
            let seq_time = n_pages as f64 / rate;
            let profile =
                TaskProfile::new(TaskId(i as u64), seq_time, rate, IoKind::Sequential);
            tasks.push(GeneratedTask {
                profile,
                relation: format!("wl_{}_{:02}", config.seed, i),
                n_tuples,
                blen,
                n_pages,
            });
        }
        GeneratedWorkload { config: config.clone(), tasks }
    }
}

impl Default for WorkloadGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;
    use xprs_disk::StripedLayout;
    use xprs_scheduler::MachineConfig;

    fn generate(kind: WorkloadKind, seed: u64) -> GeneratedWorkload {
        WorkloadGenerator::new().generate(&WorkloadConfig::paper(kind, seed))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(WorkloadKind::RandomMix, 7);
        let b = generate(WorkloadKind::RandomMix, 7);
        assert_eq!(a.profiles(), b.profiles());
        let c = generate(WorkloadKind::RandomMix, 8);
        assert_ne!(a.profiles(), c.profiles());
    }

    #[test]
    fn rates_respect_their_class() {
        let m = MachineConfig::paper_default();
        let cpu = generate(WorkloadKind::AllCpu, 3);
        assert!(cpu.tasks.iter().all(|t| t.profile.io_rate < m.io_threshold() + 1.0));
        let io = generate(WorkloadKind::AllIo, 3);
        // Quantization can land a hair under the nominal bound.
        assert!(io.tasks.iter().all(|t| t.profile.io_rate > 27.0));
    }

    #[test]
    fn extreme_workload_is_half_and_half() {
        let w = generate(WorkloadKind::Extreme, 11);
        let io_bound = w.tasks.iter().filter(|t| t.profile.io_rate > 50.0).count();
        let cpu_bound = w.tasks.iter().filter(|t| t.profile.io_rate < 20.0).count();
        assert_eq!(io_bound, 5);
        assert_eq!(cpu_bound, 5);
    }

    #[test]
    fn default_lengths_are_durations_in_range() {
        let w = generate(WorkloadKind::RandomMix, 1234);
        for t in &w.tasks {
            assert!(t.n_pages >= 1);
            // Page rounding can nudge the duration slightly past the bounds.
            assert!((1.8..=20.5).contains(&t.profile.seq_time), "T = {}", t.profile.seq_time);
        }
    }

    #[test]
    fn literal_tuple_lengths_cover_the_paper_range() {
        let w = WorkloadGenerator::new()
            .generate(&WorkloadConfig::paper_tuple_lengths(WorkloadKind::RandomMix, 1234));
        for t in &w.tasks {
            assert!((100..=10_000).contains(&t.n_tuples));
            assert!(t.n_pages >= 1);
            assert!(t.profile.seq_time > 0.0);
        }
    }

    #[test]
    fn loaded_relations_realize_the_profiles() {
        let w = generate(WorkloadKind::Extreme, 5);
        let mut cat = Catalog::new(StripedLayout::new(4));
        w.load_into(&mut cat);
        for t in &w.tasks {
            let rel = cat.get(&t.relation).expect("relation loaded");
            let stats = rel.stats();
            assert_eq!(stats.n_tuples, t.n_tuples);
            assert_eq!(
                stats.n_blocks, t.n_pages,
                "page count mismatch for {} (blen {})",
                t.relation, t.blen
            );
        }
    }

    #[test]
    fn profile_seq_time_is_pages_over_rate() {
        let w = generate(WorkloadKind::AllIo, 21);
        for t in &w.tasks {
            let expect = t.n_pages as f64 / t.profile.io_rate;
            assert!((t.profile.seq_time - expect).abs() < 1e-12);
            assert!((t.profile.total_ios() - t.n_pages as f64).abs() < 1e-6);
        }
    }
}
