//! Task and relation generation.
//!
//! Each generated task scans its own relation (distinct relations make the
//! disk-head interference between co-scheduled tasks real). The generator
//! produces both the scheduler-facing [`TaskProfile`] and a relation
//! specification that, when loaded into a catalog, *realizes* that profile
//! on the executor — so the same workload drives the analytic model, the
//! discrete-event simulator and the threaded executor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xprs_scheduler::{IoKind, TaskId, TaskProfile};
use xprs_storage::{Catalog, Datum, Tuple};

use crate::calibrate::Calibration;
use crate::spec::{LengthModel, WorkloadConfig};

/// One generated task.
#[derive(Debug, Clone)]
pub struct GeneratedTask {
    /// Scheduler-facing profile.
    pub profile: TaskProfile,
    /// Name of the backing relation.
    pub relation: String,
    /// Tuples in the relation.
    pub n_tuples: u64,
    /// `b`-attribute length realizing the I/O rate.
    pub blen: usize,
    /// Heap pages the scan will read.
    pub n_pages: u64,
}

/// A complete generated workload.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The configuration that produced it.
    pub config: WorkloadConfig,
    /// Tasks in generation order.
    pub tasks: Vec<GeneratedTask>,
}

impl GeneratedWorkload {
    /// The task profiles, for driving schedulers and simulators.
    pub fn profiles(&self) -> Vec<TaskProfile> {
        self.tasks.iter().map(|t| t.profile.clone()).collect()
    }

    /// Create and bulk-load every backing relation into `catalog`.
    pub fn load_into(&self, catalog: &mut Catalog) {
        for t in &self.tasks {
            catalog.create(&t.relation, xprs_storage::Schema::paper_rel());
            let rows = (0..t.n_tuples).map(|i| {
                Tuple::from_values(vec![
                    Datum::Int((i % 1000) as i32),
                    Datum::Text("x".repeat(t.blen)),
                ])
            });
            catalog.load(&t.relation, rows);
        }
    }
}

/// The workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    calibration: Calibration,
}

impl WorkloadGenerator {
    /// Generator with the paper calibration.
    pub fn new() -> Self {
        WorkloadGenerator { calibration: Calibration::paper_default() }
    }

    /// Generate the tasks of `config`. Deterministic per seed.
    pub fn generate(&self, config: &WorkloadConfig) -> GeneratedWorkload {
        assert!(config.n_tasks >= 1, "empty workload");
        if let LengthModel::Tuples { min, max } = config.length {
            assert!(min >= 1 && min <= max, "bad tuple-length bounds");
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tasks = Vec::with_capacity(config.n_tasks);
        for i in 0..config.n_tasks {
            let target_rate = config.kind.rate(i, rng.random::<f64>());
            let blen = self.calibration.blen_for_rate(target_rate);
            // The realized rate is quantized by whole tuples-per-page; use
            // it (not the target) so the profile matches the physical task.
            let rate = self.calibration.rate(blen);
            let tpp = self.calibration.tuples_per_page(blen);
            let (n_tuples, n_pages) = match config.length {
                LengthModel::Tuples { min, max } => {
                    let n_tuples = rng.random_range(min..=max);
                    (n_tuples, n_tuples.div_ceil(tpp))
                }
                LengthModel::SeqTime { min, max } => {
                    let t = rng.random_range(min..=max);
                    let n_pages = ((t * rate).round() as u64).max(1);
                    (n_pages * tpp, n_pages)
                }
            };
            let seq_time = n_pages as f64 / rate;
            let profile =
                TaskProfile::new(TaskId(i as u64), seq_time, rate, IoKind::Sequential);
            tasks.push(GeneratedTask {
                profile,
                relation: format!("wl_{}_{:02}", config.seed, i),
                n_tuples,
                blen,
                n_pages,
            });
        }
        GeneratedWorkload { config: config.clone(), tasks }
    }
}

impl Default for WorkloadGenerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Specification of a larger-than-memory scan workload: every relation is
/// `spill_factor` times the buffer pool, so a scan cannot be served from
/// cache and every worker share is disk traffic — the paper's §3 regime,
/// and the one where morsel stealing has to earn its keep.
///
/// Block costs are deliberately **skewed**: a seeded fraction of pages are
/// *dense* (many thin tuples — per-page CPU dominates) and the rest are
/// *fat* (one page-filling tuple — pure I/O), laid out in contiguous runs.
/// A static §2.4 share that lands on a dense run is many times more
/// expensive than its neighbours, which is exactly the imbalance work
/// stealing exists to flatten.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskResidentSpec {
    /// RNG seed; the layout and keys are a pure function of the spec.
    pub seed: u64,
    /// Buffer-pool size the workload must spill past.
    pub bufpool_pages: u64,
    /// Relation size as a multiple of the buffer pool (the paper range
    /// is 4–16×).
    pub spill_factor: u64,
    /// Relations to generate (two lets IO-heavy scans co-run for the
    /// §2.2 pairing-window audit).
    pub n_relations: usize,
    /// Fraction of pages that are dense (CPU-heavy).
    pub dense_fraction: f64,
    /// Longest contiguous run of same-class pages; longer runs make the
    /// static-share imbalance coarser.
    pub max_run: u64,
    /// Dense-page `b`-attribute length (thin tuples, many per page).
    pub dense_blen: usize,
    /// Join keys are uniform in `0..key_mod`.
    pub key_mod: u64,
}

impl DiskResidentSpec {
    /// The paper-shaped spec: two relations at `spill_factor`× the pool,
    /// a quarter of the pages dense in runs of up to 8.
    pub fn paper(bufpool_pages: u64, spill_factor: u64, seed: u64) -> Self {
        DiskResidentSpec {
            seed,
            bufpool_pages,
            spill_factor,
            n_relations: 2,
            dense_fraction: 0.25,
            max_run: 8,
            dense_blen: 50,
            key_mod: 1000,
        }
    }

    /// Heap pages per generated relation.
    pub fn pages_per_relation(&self) -> u64 {
        self.bufpool_pages * self.spill_factor
    }
}

/// One generated disk-resident relation: its page-class layout plus the
/// page/tuple counts the loaded catalog must realize exactly.
#[derive(Debug, Clone)]
pub struct DiskResidentRelation {
    /// Catalog name (`dr_<seed>_<idx>`).
    pub name: String,
    /// `page_class[p]` is `true` when heap page `p` is dense.
    pub page_class: Vec<bool>,
    /// Dense-page tuple count (each dense page holds exactly this many).
    pub dense_tpp: u64,
    /// Total tuples across all pages.
    pub n_tuples: u64,
}

impl DiskResidentRelation {
    /// Heap pages the relation occupies.
    pub fn n_pages(&self) -> u64 {
        self.page_class.len() as u64
    }

    /// Dense (CPU-heavy) pages.
    pub fn dense_pages(&self) -> u64 {
        self.page_class.iter().filter(|&&d| d).count() as u64
    }
}

/// A generated larger-than-memory workload.
#[derive(Debug, Clone)]
pub struct DiskResidentWorkload {
    /// The spec that produced it.
    pub spec: DiskResidentSpec,
    /// Generated relations in index order.
    pub relations: Vec<DiskResidentRelation>,
}

impl DiskResidentWorkload {
    /// Create and bulk-load every relation into `catalog`. Pages are built
    /// to fill exactly — a dense page's tuples leave no room for one more,
    /// a fat tuple fills its page — so the loaded heap realizes
    /// `page_class` page for page.
    pub fn load_into(&self, catalog: &mut Catalog) {
        let fat_blen = fat_page_blen();
        for rel in &self.relations {
            catalog.create(&rel.name, xprs_storage::Schema::paper_rel());
            let mut key_seed = self.spec.seed ^ 0xD15C_0000;
            let mut rows = Vec::with_capacity(rel.n_tuples as usize);
            for &dense in &rel.page_class {
                let (count, blen) =
                    if dense { (rel.dense_tpp, self.spec.dense_blen) } else { (1, fat_blen) };
                for _ in 0..count {
                    key_seed = key_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let a = ((key_seed >> 33) % self.spec.key_mod) as i32;
                    rows.push(Tuple::from_values(vec![
                        Datum::Int(a),
                        Datum::Text("x".repeat(blen)),
                    ]));
                }
            }
            catalog.load(&rel.name, rows);
        }
    }
}

/// Specification of a hash-join workload whose **build sides cannot fit the
/// buffer pool**: the aggregate build-relation footprint is `demand_factor`
/// times the pool, so under memory-grant admission the builds must either
/// queue (serializing on grants) or run under a clamped grant and spill.
/// The memory-admission acceptance workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OversizedBuildSpec {
    /// RNG seed; relations are a pure function of the spec.
    pub seed: u64,
    /// Buffer-pool size the aggregate build demand must exceed.
    pub bufpool_pages: u64,
    /// Aggregate build demand as a multiple of the pool (≥ 4 for the
    /// acceptance regime).
    pub demand_factor: u64,
    /// Join queries (one build/probe relation pair each).
    pub n_queries: usize,
    /// Join keys are uniform in `0..key_mod` on both sides, so every query
    /// produces matches.
    pub key_mod: u64,
    /// `b`-attribute length (sets tuples per page).
    pub blen: usize,
}

impl OversizedBuildSpec {
    /// The acceptance-shaped spec: `n_queries` joins whose builds total
    /// `demand_factor`× the pool, thin-ish tuples so the builds are row-rich.
    pub fn paper(bufpool_pages: u64, demand_factor: u64, n_queries: usize, seed: u64) -> Self {
        OversizedBuildSpec { seed, bufpool_pages, demand_factor, n_queries, key_mod: 500, blen: 50 }
    }
}

/// One generated join pair of an oversized-build workload.
#[derive(Debug, Clone)]
pub struct OversizedBuildPair {
    /// Build-side relation name (`ob_<seed>_<idx>_b`).
    pub build: String,
    /// Probe-side relation name (`ob_<seed>_<idx>_p`).
    pub probe: String,
    /// Heap pages of the build relation.
    pub build_pages: u64,
    /// Heap pages of the probe relation.
    pub probe_pages: u64,
    /// Tuples per page (both sides share `blen`).
    pub tuples_per_page: u64,
}

/// A generated oversized-build workload.
#[derive(Debug, Clone)]
pub struct OversizedBuildWorkload {
    /// The spec that produced it.
    pub spec: OversizedBuildSpec,
    /// Join pairs in index order.
    pub pairs: Vec<OversizedBuildPair>,
}

impl OversizedBuildWorkload {
    /// Heap pages across all build relations — by construction at least
    /// `demand_factor × bufpool_pages`.
    pub fn total_build_pages(&self) -> u64 {
        self.pairs.iter().map(|p| p.build_pages).sum()
    }

    /// Create and bulk-load every relation into `catalog`. Rows are a pure
    /// function of the spec (seeded LCG keys), so two loads — e.g. the
    /// spill and no-spill sides of a parity check — see byte-identical
    /// relations.
    pub fn load_into(&self, catalog: &mut Catalog) {
        for (idx, pair) in self.pairs.iter().enumerate() {
            for (name, pages, salt) in [
                (&pair.build, pair.build_pages, 0x0B00_u64),
                (&pair.probe, pair.probe_pages, 0x0F00_u64),
            ] {
                catalog.create(name, xprs_storage::Schema::paper_rel());
                let mut key_seed = self.spec.seed ^ salt ^ ((idx as u64) << 16);
                let n = pages * pair.tuples_per_page;
                let rows = (0..n).map(|_| {
                    key_seed = key_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let a = ((key_seed >> 33) % self.spec.key_mod) as i32;
                    Tuple::from_values(vec![
                        Datum::Int(a),
                        Datum::Text("x".repeat(self.spec.blen)),
                    ])
                });
                catalog.load(name, rows.collect::<Vec<_>>());
            }
        }
    }
}

/// Generate the relation pairs of `spec`. Deterministic per spec; panics if
/// the demand factor is below the 4× acceptance regime.
pub fn generate_oversized_build(spec: &OversizedBuildSpec) -> OversizedBuildWorkload {
    assert!(spec.demand_factor >= 4, "demand factor {} below the 4x regime", spec.demand_factor);
    assert!(spec.bufpool_pages >= 1 && spec.n_queries >= 1 && spec.key_mod >= 1);
    let tpp = dense_tuples_per_page(spec.blen);
    // Split the aggregate demand over the queries, rounding up so the total
    // never drops below the factor.
    let build_pages =
        (spec.bufpool_pages * spec.demand_factor).div_ceil(spec.n_queries as u64).max(1);
    let probe_pages = build_pages.div_ceil(2).max(1);
    let pairs = (0..spec.n_queries)
        .map(|idx| OversizedBuildPair {
            build: format!("ob_{}_{idx}_b", spec.seed),
            probe: format!("ob_{}_{idx}_p", spec.seed),
            build_pages,
            probe_pages,
            tuples_per_page: tpp,
        })
        .collect();
    OversizedBuildWorkload { spec: spec.clone(), pairs }
}

/// `b`-length of a tuple that fills a heap page exactly (one per page).
fn fat_page_blen() -> usize {
    use xprs_storage::{PAGE_HEADER, PAGE_SIZE};
    PAGE_SIZE - PAGE_HEADER - crate::calibrate::ROW_OVERHEAD
}

/// Dense-page tuple count for `blen`: the most thin tuples a page holds
/// (so the page is full and the next tuple starts a new one).
pub(crate) fn dense_tuples_per_page(blen: usize) -> u64 {
    use xprs_storage::{PAGE_HEADER, PAGE_SIZE};
    ((PAGE_SIZE - PAGE_HEADER) / (crate::calibrate::ROW_OVERHEAD + blen)) as u64
}

/// Generate the relations of `spec`. Deterministic per spec; panics if the
/// spill factor falls outside the paper's 4–16× range.
pub fn generate_disk_resident(spec: &DiskResidentSpec) -> DiskResidentWorkload {
    assert!(
        (4..=16).contains(&spec.spill_factor),
        "spill factor {} outside the paper's 4-16x range",
        spec.spill_factor
    );
    assert!(spec.bufpool_pages >= 1 && spec.n_relations >= 1);
    assert!((0.0..=1.0).contains(&spec.dense_fraction));
    let n_pages = spec.pages_per_relation();
    let dense_tpp = dense_tuples_per_page(spec.dense_blen);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut relations = Vec::with_capacity(spec.n_relations);
    for idx in 0..spec.n_relations {
        // Deal page classes in runs: contiguous same-cost stretches make
        // the static shares coarsely unbalanced.
        let mut page_class = Vec::with_capacity(n_pages as usize);
        while (page_class.len() as u64) < n_pages {
            let run = rng.random_range(1..=spec.max_run.max(1));
            let dense = rng.random::<f64>() < spec.dense_fraction;
            for _ in 0..run.min(n_pages - page_class.len() as u64) {
                page_class.push(dense);
            }
        }
        let dense_pages = page_class.iter().filter(|&&d| d).count() as u64;
        let n_tuples = dense_pages * dense_tpp + (n_pages - dense_pages);
        relations.push(DiskResidentRelation {
            name: format!("dr_{}_{idx}", spec.seed),
            page_class,
            dense_tpp,
            n_tuples,
        });
    }
    DiskResidentWorkload { spec: spec.clone(), relations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;
    use xprs_disk::StripedLayout;
    use xprs_scheduler::MachineConfig;

    fn generate(kind: WorkloadKind, seed: u64) -> GeneratedWorkload {
        WorkloadGenerator::new().generate(&WorkloadConfig::paper(kind, seed))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(WorkloadKind::RandomMix, 7);
        let b = generate(WorkloadKind::RandomMix, 7);
        assert_eq!(a.profiles(), b.profiles());
        let c = generate(WorkloadKind::RandomMix, 8);
        assert_ne!(a.profiles(), c.profiles());
    }

    #[test]
    fn rates_respect_their_class() {
        let m = MachineConfig::paper_default();
        let cpu = generate(WorkloadKind::AllCpu, 3);
        assert!(cpu.tasks.iter().all(|t| t.profile.io_rate < m.io_threshold() + 1.0));
        let io = generate(WorkloadKind::AllIo, 3);
        // Quantization can land a hair under the nominal bound.
        assert!(io.tasks.iter().all(|t| t.profile.io_rate > 27.0));
    }

    #[test]
    fn extreme_workload_is_half_and_half() {
        let w = generate(WorkloadKind::Extreme, 11);
        let io_bound = w.tasks.iter().filter(|t| t.profile.io_rate > 50.0).count();
        let cpu_bound = w.tasks.iter().filter(|t| t.profile.io_rate < 20.0).count();
        assert_eq!(io_bound, 5);
        assert_eq!(cpu_bound, 5);
    }

    #[test]
    fn default_lengths_are_durations_in_range() {
        let w = generate(WorkloadKind::RandomMix, 1234);
        for t in &w.tasks {
            assert!(t.n_pages >= 1);
            // Page rounding can nudge the duration slightly past the bounds.
            assert!((1.8..=20.5).contains(&t.profile.seq_time), "T = {}", t.profile.seq_time);
        }
    }

    #[test]
    fn literal_tuple_lengths_cover_the_paper_range() {
        let w = WorkloadGenerator::new()
            .generate(&WorkloadConfig::paper_tuple_lengths(WorkloadKind::RandomMix, 1234));
        for t in &w.tasks {
            assert!((100..=10_000).contains(&t.n_tuples));
            assert!(t.n_pages >= 1);
            assert!(t.profile.seq_time > 0.0);
        }
    }

    #[test]
    fn loaded_relations_realize_the_profiles() {
        let w = generate(WorkloadKind::Extreme, 5);
        let mut cat = Catalog::new(StripedLayout::new(4));
        w.load_into(&mut cat);
        for t in &w.tasks {
            let rel = cat.get(&t.relation).expect("relation loaded");
            let stats = rel.stats();
            assert_eq!(stats.n_tuples, t.n_tuples);
            assert_eq!(
                stats.n_blocks, t.n_pages,
                "page count mismatch for {} (blen {})",
                t.relation, t.blen
            );
        }
    }

    #[test]
    fn disk_resident_spills_past_the_pool_and_loads_exactly() {
        let spec = DiskResidentSpec::paper(16, 4, 0xD15C);
        let w = generate_disk_resident(&spec);
        assert_eq!(w.relations.len(), 2);
        let mut cat = Catalog::new(StripedLayout::new(4));
        w.load_into(&mut cat);
        for rel in &w.relations {
            assert_eq!(rel.n_pages(), 64, "4x a 16-page pool");
            assert!(rel.n_pages() >= 4 * spec.bufpool_pages);
            let stats = cat.get(&rel.name).expect("loaded").stats();
            assert_eq!(stats.n_tuples, rel.n_tuples);
            assert_eq!(
                stats.n_blocks,
                rel.n_pages(),
                "page-exact layout for {} (dense_tpp {})",
                rel.name,
                rel.dense_tpp
            );
        }
    }

    #[test]
    fn disk_resident_block_costs_are_skewed() {
        let w = generate_disk_resident(&DiskResidentSpec::paper(64, 8, 9));
        let rel = &w.relations[0];
        let dense = rel.dense_pages();
        assert!(dense > 0 && dense < rel.n_pages(), "both classes present");
        // Per-page qualification work is proportional to the page's tuple
        // count: dense pages cost dense_tpp times a fat page.
        assert!(rel.dense_tpp >= 100, "dense pages are ~2 orders costlier");
        // Runs make the skew coarse: at least one same-class run of > 1.
        assert!(
            rel.page_class.windows(2).any(|w| w[0] == w[1]),
            "clustered runs expected"
        );
    }

    #[test]
    fn disk_resident_generation_is_deterministic() {
        let spec = DiskResidentSpec::paper(32, 6, 77);
        let a = generate_disk_resident(&spec);
        let b = generate_disk_resident(&spec);
        for (x, y) in a.relations.iter().zip(&b.relations) {
            assert_eq!(x.page_class, y.page_class);
            assert_eq!(x.n_tuples, y.n_tuples);
        }
        let c = generate_disk_resident(&DiskResidentSpec::paper(32, 6, 78));
        assert_ne!(a.relations[0].page_class, c.relations[0].page_class);
    }

    #[test]
    #[should_panic(expected = "outside the paper's 4-16x range")]
    fn disk_resident_rejects_cacheable_sizes() {
        generate_disk_resident(&DiskResidentSpec::paper(64, 2, 1));
    }

    #[test]
    fn oversized_build_demand_covers_the_factor_and_loads_page_exactly() {
        let spec = OversizedBuildSpec::paper(32, 4, 3, 0xB11D);
        let w = generate_oversized_build(&spec);
        assert_eq!(w.pairs.len(), 3);
        assert!(
            w.total_build_pages() >= spec.demand_factor * spec.bufpool_pages,
            "aggregate build demand must cover the factor: {} pages",
            w.total_build_pages()
        );
        let mut cat = Catalog::new(StripedLayout::new(4));
        w.load_into(&mut cat);
        for p in &w.pairs {
            let b = cat.get(&p.build).expect("build loaded").stats();
            assert_eq!(b.n_blocks, p.build_pages, "page-exact build {}", p.build);
            assert_eq!(b.n_tuples, p.build_pages * p.tuples_per_page);
            let pr = cat.get(&p.probe).expect("probe loaded").stats();
            assert_eq!(pr.n_blocks, p.probe_pages, "page-exact probe {}", p.probe);
            // Both sides draw keys from the same 0..key_mod domain, so the
            // join has matches.
            assert!(b.min_a >= 0 && (b.max_a as u64) < spec.key_mod);
            assert!(pr.min_a >= 0 && (pr.max_a as u64) < spec.key_mod);
        }
    }

    #[test]
    fn oversized_build_generation_is_deterministic() {
        let spec = OversizedBuildSpec::paper(16, 6, 2, 9);
        let a = generate_oversized_build(&spec);
        let b = generate_oversized_build(&spec);
        let mut cat_a = Catalog::new(StripedLayout::new(4));
        let mut cat_b = Catalog::new(StripedLayout::new(4));
        a.load_into(&mut cat_a);
        b.load_into(&mut cat_b);
        for p in &a.pairs {
            let sa = cat_a.get(&p.build).expect("a").stats();
            let sb = cat_b.get(&p.build).expect("b").stats();
            assert_eq!(sa.n_tuples, sb.n_tuples);
            assert_eq!(sa.min_a, sb.min_a);
            assert_eq!(sa.max_a, sb.max_a);
            assert_eq!(sa.n_distinct_a, sb.n_distinct_a);
        }
    }

    #[test]
    #[should_panic(expected = "below the 4x regime")]
    fn oversized_build_rejects_fitting_demand() {
        generate_oversized_build(&OversizedBuildSpec::paper(64, 2, 2, 1));
    }

    #[test]
    fn profile_seq_time_is_pages_over_rate() {
        let w = generate(WorkloadKind::AllIo, 21);
        for t in &w.tasks {
            let expect = t.n_pages as f64 / t.profile.io_rate;
            assert!((t.profile.seq_time - expect).abs() < 1e-12);
            assert!((t.profile.total_ios() - t.n_pages as f64).abs() < 1e-6);
        }
    }
}
