//! Tuple-size ↔ I/O-rate calibration.
//!
//! A sequential backend alternates one page read (sequential service,
//! `1/97` s) with the CPU work for the tuples on that page. Per-tuple CPU is
//! modelled as a fixed qualification overhead plus a per-byte term (large
//! tuples cost more to copy and examine), fitted to the paper's two anchors:
//! `r_min` (10-byte tuples, ~800 per page, 5 I/Os per second) and `r_max`
//! (one page-filling tuple, 70 I/Os per second).

use xprs_storage::{PAGE_HEADER, PAGE_SIZE};

/// Per-tuple line-pointer plus header overhead already counted by
/// `Tuple::stored_size` for an `(Int, Text)` row beyond the text bytes:
/// 4 (tuple header) + 2 (line pointer) + 4 (int) + 4 (text length).
pub(crate) const ROW_OVERHEAD: usize = 14;

/// CPU-cost calibration constants.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Sequential page-read service time, seconds (1/97 on the paper disks).
    pub seq_service: f64,
    /// Fixed CPU seconds per tuple (qualification evaluation).
    pub cpu_base: f64,
    /// CPU seconds per tuple byte (copy/examine).
    pub cpu_per_byte: f64,
}

impl Calibration {
    /// Fit to the paper's anchors: `r_min` at 5 io/s, `r_max` at 70 io/s.
    pub fn paper_default() -> Self {
        let seq_service = 1.0 / 97.0;
        // r_max: one tuple of (PAGE_SIZE − header − overhead) bytes per page;
        // page CPU = 1/70 − 1/97.
        let big = (PAGE_SIZE - PAGE_HEADER - ROW_OVERHEAD) as f64;
        // r_min: empty b ⇒ 14-byte rows ⇒ floor(8168/14) = 583 per page;
        // page CPU = 1/5 − 1/97.
        let small_rows = ((PAGE_SIZE - PAGE_HEADER) / ROW_OVERHEAD) as f64;
        // Two equations:
        //   1·(base + big·pb)          = 1/70 − 1/97
        //   small_rows·(base + 0·pb)   = 1/5 − 1/97
        let cpu_base = (1.0 / 5.0 - seq_service) / small_rows;
        let cpu_per_byte = ((1.0 / 70.0 - seq_service) - cpu_base) / big;
        Calibration { seq_service, cpu_base, cpu_per_byte }
    }

    /// Tuples of `b`-length `blen` that fit on one page.
    pub fn tuples_per_page(&self, blen: usize) -> u64 {
        ((PAGE_SIZE - PAGE_HEADER) / (ROW_OVERHEAD + blen)).max(1) as u64
    }

    /// The sequential-scan I/O rate of a relation with `b`-length `blen`.
    pub fn rate(&self, blen: usize) -> f64 {
        let tpp = self.tuples_per_page(blen) as f64;
        let page_cpu = tpp * (self.cpu_base + self.cpu_per_byte * blen as f64);
        1.0 / (self.seq_service + page_cpu)
    }

    /// Invert: the `b`-length whose scan rate is closest to `target`
    /// I/Os per second.
    ///
    /// Whole-tuples-per-page quantization makes `rate(blen)` a sawtooth, so
    /// instead of bisecting we solve each tuples-per-page band analytically
    /// (within a band the rate is continuous in the byte length) and keep
    /// the best achievable point.
    ///
    /// # Panics
    /// Panics if `target` lies outside the achievable range (below the
    /// `r_min` rate or roughly above the `r_max` rate).
    pub fn blen_for_rate(&self, target: f64) -> usize {
        let max_blen = PAGE_SIZE - PAGE_HEADER - ROW_OVERHEAD;
        let lo_rate = self.rate(0);
        assert!(
            target >= lo_rate * 0.999 && target <= 71.0,
            "rate {target} outside achievable [{lo_rate:.2}, 70]"
        );
        let page_cpu_target = 1.0 / target - self.seq_service;
        let usable = PAGE_SIZE - PAGE_HEADER;
        let mut best: Option<(f64, usize)> = None;
        let max_tpp = (usable / ROW_OVERHEAD) as u64;
        for tpp in 1..=max_tpp {
            // Exact byte length hitting the target in this band.
            let b_exact = (page_cpu_target / tpp as f64 - self.cpu_base) / self.cpu_per_byte;
            // The band's valid byte-length interval for this tuples-per-page.
            let band_hi = usable / tpp as usize - ROW_OVERHEAD; // largest blen with this tpp
            let band_lo = if tpp == max_tpp {
                0
            } else {
                usable / (tpp as usize + 1) - ROW_OVERHEAD + 1
            };
            if band_lo > band_hi || band_hi > max_blen {
                continue;
            }
            let b = (b_exact.round() as i64).clamp(band_lo as i64, band_hi as i64) as usize;
            if self.tuples_per_page(b) != tpp {
                continue;
            }
            let err = (self.rate(b) - target).abs();
            if best.is_none_or(|(e, _)| err < e) {
                best = Some((err, b));
            }
        }
        best.expect("at least one band is valid").1
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Convenience: rate of a `b`-length under the paper calibration.
pub fn rate_for_tuple_size(blen: usize) -> f64 {
    Calibration::paper_default().rate(blen)
}

/// Convenience: `b`-length for a target rate under the paper calibration.
pub fn tuple_size_for_rate(rate: f64) -> usize {
    Calibration::paper_default().blen_for_rate(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_the_paper_rates() {
        let c = Calibration::paper_default();
        // r_min: NULL b ⇒ blen 0 ⇒ ~816 tuples/page ⇒ 5 io/s.
        assert!((c.rate(0) - 5.0).abs() < 0.1, "r_min rate {}", c.rate(0));
        // r_max: page-filling tuple ⇒ 70 io/s.
        let max_blen = PAGE_SIZE - PAGE_HEADER - ROW_OVERHEAD;
        assert!((c.rate(max_blen) - 70.0).abs() < 0.5, "r_max rate {}", c.rate(max_blen));
        assert_eq!(c.tuples_per_page(max_blen), 1);
    }

    #[test]
    fn rate_covers_the_paper_span() {
        // Quantization makes the curve a sawtooth, but its envelope rises
        // from r_min to r_max.
        let c = Calibration::paper_default();
        assert!(c.rate(0) < 6.0);
        assert!(c.rate(4000) > 60.0);
    }

    #[test]
    fn inversion_round_trips_across_the_range() {
        let c = Calibration::paper_default();
        for tenth in 50..=700 {
            let target = tenth as f64 / 10.0;
            let blen = c.blen_for_rate(target);
            let achieved = c.rate(blen);
            // Quantization is coarsest near r_min (whole tuples per page);
            // 4% covers the worst gap in the achievable-rate lattice.
            assert!(
                (achieved - target).abs() / target < 0.04,
                "target {target} → blen {blen} → {achieved}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside achievable")]
    fn unreachable_rate_is_rejected() {
        Calibration::paper_default().blen_for_rate(200.0);
    }

    #[test]
    fn tuples_per_page_matches_storage_arithmetic() {
        let c = Calibration::paper_default();
        // 786-byte b ⇒ 800-byte rows ⇒ 10 per page.
        assert_eq!(c.tuples_per_page(786), 10);
    }
}
