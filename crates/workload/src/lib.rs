//! # xprs-workload
//!
//! Generators for the paper's Section 3 evaluation workloads.
//!
//! Each workload is ten one-variable selection tasks. A task's I/O rate is
//! dialled by the **tuple size** of the relation it scans: small tuples pack
//! hundreds to a page, so the per-page qualification work dominates and the
//! scan is CPU-bound; an 8 KB tuple gives one tuple per page and an IO-bound
//! scan. The paper's calibration anchors are `r_min` (NULL `b` attribute,
//! 5 I/Os per second) and `r_max` (one tuple per page, 70 I/Os per second).
//!
//! | class                | I/O rate (I/Os per second) |
//! |----------------------|----------------------------|
//! | CPU-bound            | uniform in `[5, 30)`       |
//! | IO-bound             | uniform in `(30, 60]`      |
//! | extremely CPU-bound  | uniform in `[5, 15]`       |
//! | extremely IO-bound   | uniform in `[60, 70]`      |
//!
//! Task lengths are uniform between scanning 100 and 10 000 tuples.

pub mod arrivals;
pub mod calibrate;
pub mod gen;
pub mod skew;
pub mod spec;

pub use arrivals::{generate_arrivals, Arrival, ArrivalSpec, QueryClass, TenantLoad};
pub use calibrate::{rate_for_tuple_size, tuple_size_for_rate, Calibration};
pub use gen::{
    generate_disk_resident, generate_oversized_build, DiskResidentRelation, DiskResidentSpec,
    DiskResidentWorkload, GeneratedTask, GeneratedWorkload, OversizedBuildPair,
    OversizedBuildSpec, OversizedBuildWorkload, WorkloadGenerator,
};
pub use skew::{generate_zipf_join, zipf_keys, ZipfJoinSpec, ZipfJoinWorkload};
pub use spec::{LengthModel, WorkloadConfig, WorkloadKind};
