//! Simulator task specifications and their derivation from scheduler-level
//! task profiles.

use xprs_disk::{DiskParams, RelId};
use xprs_scheduler::{IoKind, TaskProfile};

/// How a task touches its relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Page-partitioned sequential scan: pages `0..n_ios` in stripe order.
    SeqScan,
    /// Range-partitioned unclustered index scan: each key dereferences to a
    /// pseudo-random heap block of a relation with `heap_blocks` pages.
    IndexScan {
        /// Heap size the index postings point into.
        heap_blocks: u64,
    },
}

/// A fully-specified simulator task.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// The scheduler-level profile (identity, `T_i`, `C_i`, I/O kind).
    pub profile: TaskProfile,
    /// Relation the task reads (distinct relations interfere on the disks).
    pub rel: RelId,
    /// Number of I/O units (pages for a scan, keys for an index scan).
    pub n_ios: u64,
    /// CPU seconds consumed per I/O unit (qualification evaluation).
    pub cpu_per_io: f64,
    /// Access pattern.
    pub access: AccessPattern,
}

impl SimTask {
    /// Derive the physical task that *realizes* a profile on disks with
    /// `params`. Workers overlap each page's qualification evaluation with
    /// the read-ahead of the next page (the double-buffered pipeline real
    /// scans get from OS read-ahead), so a worker's cycle time is
    /// `max(cpu_per_io, service)`. Calibrating `cpu_per_io = 1 / C_i` makes
    /// a solo backend deliver exactly `C_i` I/Os per second and a
    /// parallelism-`x` execution demand `C_i · x` — the paper's
    /// `IO_i(x) = C_i · x` model — while disk queueing and seek
    /// interference still emerge from the simulated array.
    ///
    /// # Panics
    /// Panics if `C_i` exceeds what one disk stream can deliver (97 I/Os
    /// per second for sequential scans, 35 for index scans on the paper's
    /// disks) — such a profile is physically unrealizable, and silently
    /// clamping it would skew the calibration the experiments depend on.
    pub fn from_profile(profile: TaskProfile, rel: RelId, params: &DiskParams) -> Self {
        let (service, access) = match profile.io_kind {
            IoKind::Sequential => (params.seq_service, AccessPattern::SeqScan),
            IoKind::Random => {
                (params.random_service, AccessPattern::IndexScan { heap_blocks: 10_007 })
            }
        };
        let cycle = 1.0 / profile.io_rate;
        assert!(
            cycle >= service - 1e-12,
            "io_rate {} exceeds the solo disk rate {} for {:?} access",
            profile.io_rate,
            1.0 / service,
            profile.io_kind
        );
        let cpu_per_io = cycle;
        let n_ios = profile.total_ios().round().max(1.0) as u64;
        SimTask { profile, rel, n_ios, cpu_per_io, access }
    }

    /// The heap block an index key dereferences to: a multiplicative-hash
    /// scatter, stable per key, spread over the whole heap — the random
    /// pattern unclustered postings produce.
    pub fn block_of_key(&self, key: u64) -> u64 {
        match self.access {
            AccessPattern::SeqScan => key,
            AccessPattern::IndexScan { heap_blocks } => {
                key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % heap_blocks.max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_scheduler::TaskId;

    fn params() -> DiskParams {
        DiskParams::paper_default()
    }

    #[test]
    fn seq_scan_calibration_inverts_the_rate() {
        let p = TaskProfile::new(TaskId(0), 10.0, 70.0, IoKind::Sequential);
        let t = SimTask::from_profile(p, RelId(1), &params());
        // Double-buffered pipeline: the CPU side of the cycle is 1/C.
        assert!((t.cpu_per_io - 1.0 / 70.0).abs() < 1e-12);
        assert_eq!(t.n_ios, 700);
        assert_eq!(t.access, AccessPattern::SeqScan);
    }

    #[test]
    fn cpu_bound_scan_has_large_cpu_share() {
        let p = TaskProfile::new(TaskId(0), 10.0, 5.0, IoKind::Sequential);
        let t = SimTask::from_profile(p, RelId(1), &params());
        // 1/5 s of CPU per page dwarfs any service time.
        assert!((t.cpu_per_io - 0.2).abs() < 1e-12);
    }

    #[test]
    fn index_scan_uses_random_service() {
        let p = TaskProfile::new(TaskId(0), 10.0, 30.0, IoKind::Random);
        let t = SimTask::from_profile(p, RelId(1), &params());
        assert!((t.cpu_per_io - 1.0 / 30.0).abs() < 1e-12);
        assert!(matches!(t.access, AccessPattern::IndexScan { .. }));
    }

    #[test]
    #[should_panic(expected = "exceeds the solo disk rate")]
    fn unrealizable_rate_is_rejected() {
        let p = TaskProfile::new(TaskId(0), 10.0, 120.0, IoKind::Sequential);
        SimTask::from_profile(p, RelId(1), &params());
    }

    #[test]
    fn key_scatter_covers_the_heap() {
        let p = TaskProfile::new(TaskId(0), 10.0, 30.0, IoKind::Random);
        let t = SimTask::from_profile(p, RelId(1), &params());
        let mut seen = std::collections::HashSet::new();
        for k in 0..300u64 {
            let b = t.block_of_key(k);
            assert!(b < 10_007);
            seen.insert(b);
        }
        // A hash scatter should rarely collide over 300 of 10k blocks.
        assert!(seen.len() > 290);
        // Consecutive keys land far apart (no accidental sequentiality).
        let d = t.block_of_key(1).abs_diff(t.block_of_key(0));
        assert!(d > 64);
    }
}
