//! The discrete-event engine.
//!
//! Entities: one FIFO queue per disk (a disk serves one request at a time at
//! the service rate `xprs-disk` dictates), one processor pool of `N` CPUs
//! with a FIFO ready queue, and per-task worker sets whose page/key
//! assignments come from the Section 2.4 partitioning structures. A worker
//! is a synchronous slave backend: it requests a block, waits for the disk,
//! burns CPU evaluating the qualifications of the tuples on the block, and
//! loops.
//!
//! The engine is the *driver* for a scheduling policy in the sense of
//! [`xprs_scheduler::policy`]: arrivals and completions flow to the policy,
//! its `Start`/`Adjust` actions flow back. `Adjust` runs the real
//! adjustment protocols — the master's round trip is modelled by
//! [`SimConfig::adjust_latency`] and the gradual hand-over (old workers
//! finishing their pages below `maxpage`) happens by construction.

use xprs_disk::{ArrayStats, DiskState, IoRequest, ServiceClass, StripedLayout, WorkerId};
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::{MachineConfig, TaskId};
use xprs_storage::partition::{PagePartition, RangePartition};

use crate::event::{EventKind, EventQueue};
use crate::metrics::SimReport;
use crate::task::{AccessPattern, SimTask};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine (processor count, disk count, service rates).
    pub machine: MachineConfig,
    /// Seconds between the master deciding to adjust a task's parallelism
    /// and the new assignment landing at the slaves (the two message rounds
    /// of Figures 5/6 over shared memory). The paper's point is that this is
    /// tiny on a shared-memory machine.
    pub adjust_latency: f64,
}

impl SimConfig {
    /// Paper machine, 5 ms adjustment protocol.
    pub fn paper_default() -> Self {
        SimConfig { machine: MachineConfig::paper_default(), adjust_latency: 0.005 }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

enum Partition {
    Page(PagePartition),
    Range(RangePartition),
}

enum TaskState {
    Pending,
    Running,
    Done,
}

struct TaskRt {
    spec: SimTask,
    state: TaskState,
    partition: Option<Partition>,
    target_parallelism: u32,
    ios_done: u64,
    started_at: f64,
    finished_at: f64,
}

struct WorkerRt {
    task: usize,
    slot: usize,
    /// True when the worker found no work at its last fetch. An adjustment
    /// can hand an idle slot new pages, so `apply_adjust` re-kicks idlers.
    idle: bool,
    /// A prefetch request is queued or in service at a disk.
    io_inflight: bool,
    /// The CPU stage (queued or executing) holds a page.
    processing: bool,
    /// A fetched page is buffered, waiting for the CPU stage to free up.
    buffered: bool,
}

struct DiskRt {
    state: DiskState,
    queue: std::collections::VecDeque<(usize, IoRequest)>,
    in_service: Option<usize>,
}

/// The simulator. Construct once, [`run`](Simulator::run) per experiment.
pub struct Simulator {
    cfg: SimConfig,
}

struct Run<'p> {
    cfg: SimConfig,
    layout: StripedLayout,
    policy: &'p mut dyn SchedulePolicy,
    queue: EventQueue,
    tasks: Vec<TaskRt>,
    workers: Vec<WorkerRt>,
    disks: Vec<DiskRt>,
    cpu_free: u32,
    cpu_ready: std::collections::VecDeque<usize>,
    cpu_busy_total: f64,
    now: f64,
    n_events: u64,
    need_decide: bool,
}

impl Simulator {
    /// A simulator with configuration `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg }
    }

    /// Simulate `policy` over tasks released at the given times.
    ///
    /// # Panics
    /// Panics if the policy wedges (tasks remain but it never starts them) —
    /// a policy bug that should fail loudly rather than report a bogus
    /// elapsed time.
    pub fn run(
        &self,
        policy: &mut dyn SchedulePolicy,
        arrivals: &[(SimTask, f64)],
    ) -> SimReport {
        let machine = self.cfg.machine.clone();
        let disk_params = xprs_disk::DiskParams::from_rates(
            machine.seq_bw,
            machine.almost_seq_bw,
            machine.random_bw,
        );
        let mut run = Run {
            layout: StripedLayout::new(machine.n_disks),
            cfg: self.cfg.clone(),
            policy,
            queue: EventQueue::new(),
            tasks: arrivals
                .iter()
                .map(|(spec, _)| TaskRt {
                    spec: spec.clone(),
                    state: TaskState::Pending,
                    partition: None,
                    target_parallelism: 0,
                    ios_done: 0,
                    started_at: 0.0,
                    finished_at: 0.0,
                })
                .collect(),
            workers: Vec::new(),
            disks: (0..machine.n_disks)
                .map(|_| DiskRt {
                    state: DiskState::new(disk_params.clone()),
                    queue: Default::default(),
                    in_service: None,
                })
                .collect(),
            cpu_free: machine.n_procs,
            cpu_ready: Default::default(),
            cpu_busy_total: 0.0,
            now: 0.0,
            n_events: 0,
            need_decide: false,
        };
        for (i, (_, at)) in arrivals.iter().enumerate() {
            run.queue.push(*at, EventKind::Arrival(i));
        }
        run.main_loop();
        run.report()
    }
}

impl<'p> Run<'p> {
    fn main_loop(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.handle(ev);
            // Drain every event at this exact instant before consulting the
            // policy, so simultaneous arrivals are seen as one batch.
            while self.queue.peek_time() == Some(self.now) {
                let (_, ev) = self.queue.pop().expect("peeked");
                self.handle(ev);
            }
            if self.need_decide {
                self.need_decide = false;
                self.decide();
            }
        }
        let unfinished: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| !matches!(t.state, TaskState::Done))
            .map(|t| t.spec.profile.id)
            .collect();
        assert!(
            unfinished.is_empty(),
            "policy {} wedged; unfinished tasks: {unfinished:?}",
            self.policy.name()
        );
    }

    fn handle(&mut self, ev: EventKind) {
        self.n_events += 1;
        match ev {
            EventKind::Arrival(i) => {
                let profile = self.tasks[i].spec.profile.clone();
                self.policy.on_arrival(self.now, profile);
                self.need_decide = true;
            }
            EventKind::DiskDone(d) => self.disk_done(d),
            EventKind::CpuDone(w) => self.cpu_done(w),
            EventKind::ApplyAdjust(task, x) => self.apply_adjust(task, x),
        }
    }

    // -- disk stage --------------------------------------------------------

    fn enqueue_io(&mut self, w: usize, global_block: u64) {
        let task = &self.tasks[self.workers[w].task];
        let d = self.layout.disk_of(global_block) as usize;
        let req = IoRequest {
            rel: task.spec.rel,
            local_block: self.layout.local_block(global_block),
            worker: WorkerId(w as u64),
            solo: task.target_parallelism == 1,
        };
        self.disks[d].queue.push_back((w, req));
        if self.disks[d].in_service.is_none() {
            self.start_disk(d);
        }
    }

    fn start_disk(&mut self, d: usize) {
        if let Some((w, req)) = self.disks[d].queue.pop_front() {
            let (_, dur) = self.disks[d].state.serve(&req);
            self.disks[d].in_service = Some(w);
            self.queue.push(self.now + dur, EventKind::DiskDone(d as u32));
        }
    }

    fn disk_done(&mut self, d: u32) {
        let d = d as usize;
        let w = self.disks[d].in_service.take().expect("DiskDone without service");
        self.start_disk(d);
        self.workers[w].io_inflight = false;
        if self.workers[w].processing {
            // The CPU stage is still chewing on the previous page; hold this
            // one in the worker's read-ahead buffer.
            self.workers[w].buffered = true;
        } else {
            // Page goes straight to the CPU stage, and the worker issues its
            // next read-ahead so I/O overlaps computation.
            self.begin_cpu(w);
            self.worker_fetch_next(w);
        }
    }

    /// Enter the CPU stage (queueing on the processor pool if necessary).
    fn begin_cpu(&mut self, w: usize) {
        self.workers[w].processing = true;
        if self.cpu_free > 0 {
            self.cpu_free -= 1;
            self.schedule_cpu(w);
        } else {
            self.cpu_ready.push_back(w);
        }
    }

    // -- cpu stage ----------------------------------------------------------

    fn schedule_cpu(&mut self, w: usize) {
        let burst = self.tasks[self.workers[w].task].spec.cpu_per_io;
        self.cpu_busy_total += burst;
        self.queue.push(self.now + burst, EventKind::CpuDone(w));
    }

    fn cpu_done(&mut self, w: usize) {
        match self.cpu_ready.pop_front() {
            Some(next) => self.schedule_cpu(next),
            None => self.cpu_free += 1,
        }
        self.workers[w].processing = false;
        self.complete_io(w);
    }

    fn complete_io(&mut self, w: usize) {
        let ti = self.workers[w].task;
        self.tasks[ti].ios_done += 1;
        if self.tasks[ti].ios_done == self.tasks[ti].spec.n_ios {
            self.tasks[ti].state = TaskState::Done;
            self.tasks[ti].finished_at = self.now;
            self.tasks[ti].partition = None;
            let id = self.tasks[ti].spec.profile.id;
            self.policy.on_finish(self.now, id);
            self.need_decide = true;
        } else if self.workers[w].buffered {
            // The read-ahead already landed: process it and keep the
            // pipeline full.
            self.workers[w].buffered = false;
            self.begin_cpu(w);
            self.worker_fetch_next(w);
        } else if !self.workers[w].io_inflight {
            // Pipeline empty (start-up, or the partition had nothing at the
            // last fetch): try again.
            self.worker_fetch_next(w);
        }
        // Otherwise the prefetch is still in flight; DiskDone continues.
    }

    // -- worker loop ---------------------------------------------------------

    fn worker_fetch_next(&mut self, w: usize) {
        let ti = self.workers[w].task;
        let slot = self.workers[w].slot;
        let task = &mut self.tasks[ti];
        let next_block = match &mut task.partition {
            Some(Partition::Page(p)) => p.next_page(slot),
            Some(Partition::Range(r)) => {
                r.next_key(slot).map(|k| task.spec.block_of_key(k as u64))
            }
            None => None, // task already completed
        };
        match next_block {
            Some(b) => {
                self.workers[w].idle = false;
                self.workers[w].io_inflight = true;
                self.enqueue_io(w, b);
            }
            None => {
                // Worker retired or drained for now. A later adjustment may
                // assign this slot more pages, so remember it is idle;
                // completion is detected by the ios_done counter.
                self.workers[w].idle = true;
            }
        }
    }

    // -- policy integration --------------------------------------------------

    fn decide(&mut self) {
        for _round in 0..32 {
            let snapshot: Vec<RunningTask> = self
                .tasks
                .iter()
                .filter(|t| matches!(t.state, TaskState::Running))
                .map(|t| RunningTask {
                    profile: t.spec.profile.clone(),
                    parallelism: t.target_parallelism as f64,
                    remaining_seq_time: t.spec.profile.seq_time
                        * (1.0 - t.ios_done as f64 / t.spec.n_ios as f64),
                })
                .collect();
            let actions = self.policy.decide(self.now, &snapshot);
            if actions.is_empty() {
                return;
            }
            for a in actions {
                match a {
                    Action::Start { id, parallelism } => self.start_task(id, parallelism),
                    Action::Adjust { id, parallelism } => {
                        let ti = self.task_index(id);
                        let x = to_workers(parallelism, self.cfg.machine.n_procs);
                        // The policy sees its target immediately; the slaves
                        // converge after the protocol round-trip.
                        self.tasks[ti].target_parallelism = x;
                        self.queue.push(
                            self.now + self.cfg.adjust_latency,
                            EventKind::ApplyAdjust(ti, x),
                        );
                    }
                }
            }
        }
        panic!("policy {} did not reach a fixpoint in 32 rounds", self.policy.name());
    }

    fn task_index(&self, id: TaskId) -> usize {
        self.tasks
            .iter()
            .position(|t| t.spec.profile.id == id)
            .unwrap_or_else(|| panic!("policy referenced unknown task {id}"))
    }

    fn start_task(&mut self, id: TaskId, parallelism: f64) {
        let ti = self.task_index(id);
        assert!(
            matches!(self.tasks[ti].state, TaskState::Pending),
            "policy started task {id} twice"
        );
        let x = to_workers(parallelism, self.cfg.machine.n_procs);
        let n_ios = self.tasks[ti].spec.n_ios;
        let partition = match self.tasks[ti].spec.access {
            AccessPattern::SeqScan => Partition::Page(PagePartition::new(n_ios, x)),
            AccessPattern::IndexScan { .. } => {
                Partition::Range(RangePartition::new(0, n_ios as i64 - 1, x))
            }
        };
        self.tasks[ti].partition = Some(partition);
        self.tasks[ti].state = TaskState::Running;
        self.tasks[ti].target_parallelism = x;
        self.tasks[ti].started_at = self.now;
        for slot in 0..x as usize {
            self.spawn_worker(ti, slot);
        }
    }

    fn apply_adjust(&mut self, ti: usize, x: u32) {
        if matches!(self.tasks[ti].state, TaskState::Done) {
            return; // the task beat the protocol to the finish line
        }
        let info = match &mut self.tasks[ti].partition {
            Some(Partition::Page(p)) => p.adjust(x),
            Some(Partition::Range(r)) => r.adjust(x),
            None => return,
        };
        for slot in info.new_slots {
            self.spawn_worker(ti, slot);
        }
        // Retiring slots stop by themselves once they pass the boundary; but
        // slots whose worker already drained may have been handed fresh
        // pages in the new assignment — wake the ones with an empty pipeline.
        let idlers: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.task == ti && w.idle && !w.io_inflight && !w.processing && !w.buffered
            })
            .map(|(i, _)| i)
            .collect();
        for w in idlers {
            self.worker_fetch_next(w);
        }
    }

    fn spawn_worker(&mut self, ti: usize, slot: usize) {
        let w = self.workers.len();
        self.workers.push(WorkerRt {
            task: ti,
            slot,
            idle: true,
            io_inflight: false,
            processing: false,
            buffered: false,
        });
        self.worker_fetch_next(w);
    }

    // -- reporting ------------------------------------------------------------

    fn report(&self) -> SimReport {
        let mut disk = ArrayStats::default();
        for d in &self.disks {
            disk.sequential += d.state.count_of(ServiceClass::Sequential);
            disk.almost_sequential += d.state.count_of(ServiceClass::AlmostSequential);
            disk.random += d.state.count_of(ServiceClass::Random);
            disk.busy_time += d.state.busy_time();
        }
        SimReport {
            elapsed: self.now,
            task_times: self
                .tasks
                .iter()
                .map(|t| (t.spec.profile.id, t.started_at, t.finished_at))
                .collect(),
            disk,
            cpu_busy: self.cpu_busy_total,
            n_events: self.n_events,
        }
    }
}

/// Convert a policy's (possibly fractional) parallelism to whole workers.
fn to_workers(x: f64, n_procs: u32) -> u32 {
    (x.round() as i64).clamp(1, n_procs as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_disk::RelId;
    use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    use xprs_scheduler::intra::IntraOnly;
    use xprs_scheduler::{IoKind, TaskProfile};

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    fn seq_task(id: u64, seq_time: f64, rate: f64) -> SimTask {
        let p = TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Sequential);
        SimTask::from_profile(p, RelId(id + 1), &xprs_disk::DiskParams::paper_default())
    }

    fn rnd_task(id: u64, seq_time: f64, rate: f64) -> SimTask {
        let p = TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Random);
        SimTask::from_profile(p, RelId(id + 1), &xprs_disk::DiskParams::paper_default())
    }

    #[test]
    fn solo_sequential_task_matches_its_calibrated_rate() {
        // One task, parallelism 1 under INTRA-ONLY? IntraOnly would use
        // maxp — force parallelism 1 via a single-processor machine.
        let mut c = cfg();
        c.machine.n_procs = 1;
        let t = seq_task(0, 10.0, 50.0); // 500 pages at 50 io/s solo
        let mut policy = IntraOnly::new(c.machine.clone(), true);
        let report = Simulator::new(c).run(&mut policy, &[(t, 0.0)]);
        // Solo synchronous backend: elapsed ≈ seq_time (first I/O is a cold
        // random seek, the rest sequential).
        assert!(
            (report.elapsed - 10.0).abs() < 0.1,
            "expected ≈10 s, got {}",
            report.elapsed
        );
        // Virtually all I/Os at the sequential rate.
        assert!(report.disk.sequential > 490);
    }

    #[test]
    fn parallel_scan_sees_almost_sequential_service() {
        let t = seq_task(0, 10.0, 60.0); // IO-bound: maxp = 4 workers
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t, 0.0)]);
        // With 4 workers interleaving on each disk, service degrades to the
        // almost-sequential class for the bulk of requests.
        assert!(
            report.disk.almost_sequential > report.disk.sequential,
            "expected almost-seq to dominate: {:?}",
            report.disk
        );
    }

    #[test]
    fn parallelism_speeds_up_a_cpu_bound_task_near_linearly() {
        let t = seq_task(0, 16.0, 5.0); // 80 pages, 0.1897 s CPU each
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t.clone(), 0.0)]);
        // 8 processors: elapsed near 16/8 = 2 (plus I/O pipeline slack).
        assert!(
            report.elapsed < 16.0 / 8.0 * 1.3,
            "poor speedup: {} s for 16 s of work on 8 CPUs",
            report.elapsed
        );
        assert!(report.elapsed > 16.0 / 8.0 * 0.9);
    }

    #[test]
    fn index_scan_pays_random_service() {
        let t = rnd_task(0, 10.0, 30.0);
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t, 0.0)]);
        assert!(
            report.disk.random as f64 > 0.95 * report.disk.total() as f64,
            "index scan should be (almost) all random I/O: {:?}",
            report.disk
        );
    }

    #[test]
    fn two_task_mix_beats_serial_execution_under_with_adj() {
        let tasks = vec![
            (seq_task(0, 20.0, 65.0), 0.0),
            (seq_task(1, 20.0, 6.0), 0.0),
        ];
        let sim = Simulator::new(cfg());
        let mut intra = IntraOnly::new(cfg().machine, true);
        let t_intra = sim.run(&mut intra, &tasks).elapsed;
        let mut adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        let t_adj = sim.run(&mut adj, &tasks).elapsed;
        assert!(
            t_adj < t_intra,
            "inter-operation parallelism should win on a mixed pair: {t_adj} vs {t_intra}"
        );
    }

    #[test]
    fn completion_notifies_policy_and_report_is_consistent() {
        let tasks = vec![(seq_task(0, 5.0, 40.0), 0.0), (seq_task(1, 5.0, 10.0), 1.0)];
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &tasks);
        assert_eq!(report.task_times.len(), 2);
        for (_, start, finish) in &report.task_times {
            assert!(finish > start);
        }
        // Task 1 released at t=1 cannot start earlier.
        let t1 = report.task_times.iter().find(|(id, _, _)| *id == TaskId(1)).unwrap();
        assert!(t1.1 >= 1.0);
        assert!(report.elapsed >= t1.2 - 1e-12);
        assert!(report.n_events > 0);
    }

    #[test]
    fn utilization_metrics_are_sane() {
        let tasks = vec![(seq_task(0, 20.0, 65.0), 0.0), (seq_task(1, 20.0, 6.0), 0.0)];
        let mut adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        let report = Simulator::new(cfg()).run(&mut adj, &tasks);
        let cpu = report.cpu_utilization(8);
        let dsk = report.disk_utilization(4);
        assert!(cpu > 0.0 && cpu <= 1.0, "cpu utilization {cpu}");
        assert!(dsk > 0.0 && dsk <= 1.0, "disk utilization {dsk}");
    }
}
