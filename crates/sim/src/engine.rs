//! The discrete-event engine.
//!
//! Entities: one FIFO queue per disk (a disk serves one request at a time at
//! the service rate `xprs-disk` dictates), one processor pool of `N` CPUs
//! with a FIFO ready queue, and per-task worker sets whose page/key
//! assignments come from the Section 2.4 partitioning structures. A worker
//! is a synchronous slave backend: it requests a block, waits for the disk,
//! burns CPU evaluating the qualifications of the tuples on the block, and
//! loops.
//!
//! The engine is the *driver* for a scheduling policy in the sense of
//! [`xprs_scheduler::policy`]: arrivals and completions flow to the policy,
//! its `Start`/`Adjust` actions flow back. `Adjust` runs the real
//! adjustment protocols — the master's round trip is modelled by
//! [`SimConfig::adjust_latency`] and the gradual hand-over (old workers
//! finishing their pages below `maxpage`) happens by construction.

use xprs_disk::{ArrayStats, DiskState, IoRequest, ServiceClass, StripedLayout, WorkerId};
use xprs_scheduler::error::SchedError;
use xprs_scheduler::fluid::FIXPOINT_ROUNDS;
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::trace::{emit, RunningSnap, SharedSink, TraceRecord};
use xprs_scheduler::{MachineConfig, TaskId};
use xprs_storage::partition::{PagePartition, RangePartition};

use crate::event::{EventKind, EventQueue};
use crate::metrics::SimReport;
use crate::task::{AccessPattern, SimTask};

/// A control-path failure during a simulation, with the statistics gathered
/// up to the instant of failure — a wedged or diverging policy still leaves
/// a usable partial report (and, with a trace sink attached, a replayable
/// record of how it got there).
#[derive(Debug, Clone)]
pub struct SimError {
    /// What went wrong.
    pub source: SchedError,
    /// The report as of the failure instant (task times of finished tasks,
    /// disk statistics, event count). `elapsed` is the failure time.
    pub partial: Box<SimReport>,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation failed at t={:.6}: {} ({} task(s) finished)",
            self.partial.elapsed,
            self.source,
            self.partial.task_times.iter().filter(|(_, _, fin)| *fin > 0.0).count()
        )
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine (processor count, disk count, service rates).
    pub machine: MachineConfig,
    /// Seconds between the master deciding to adjust a task's parallelism
    /// and the new assignment landing at the slaves (the two message rounds
    /// of Figures 5/6 over shared memory). The paper's point is that this is
    /// tiny on a shared-memory machine.
    pub adjust_latency: f64,
}

impl SimConfig {
    /// Paper machine, 5 ms adjustment protocol.
    pub fn paper_default() -> Self {
        SimConfig { machine: MachineConfig::paper_default(), adjust_latency: 0.005 }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

enum Partition {
    Page(PagePartition),
    Range(RangePartition),
}

enum TaskState {
    Pending,
    Running,
    Done,
}

struct TaskRt {
    spec: SimTask,
    state: TaskState,
    partition: Option<Partition>,
    target_parallelism: u32,
    ios_done: u64,
    started_at: f64,
    finished_at: f64,
}

struct WorkerRt {
    task: usize,
    slot: usize,
    /// True when the worker found no work at its last fetch. An adjustment
    /// can hand an idle slot new pages, so `apply_adjust` re-kicks idlers.
    idle: bool,
    /// A prefetch request is queued or in service at a disk.
    io_inflight: bool,
    /// The CPU stage (queued or executing) holds a page.
    processing: bool,
    /// A fetched page is buffered, waiting for the CPU stage to free up.
    buffered: bool,
}

struct DiskRt {
    state: DiskState,
    queue: std::collections::VecDeque<(usize, IoRequest)>,
    in_service: Option<usize>,
}

/// The simulator. Construct once, [`run`](Simulator::run) per experiment.
pub struct Simulator {
    cfg: SimConfig,
    sink: Option<SharedSink>,
}

struct Run<'p> {
    cfg: SimConfig,
    layout: StripedLayout,
    policy: &'p mut dyn SchedulePolicy,
    queue: EventQueue,
    tasks: Vec<TaskRt>,
    workers: Vec<WorkerRt>,
    disks: Vec<DiskRt>,
    cpu_free: u32,
    cpu_ready: std::collections::VecDeque<usize>,
    cpu_busy_total: f64,
    now: f64,
    n_events: u64,
    need_decide: bool,
    sink: Option<SharedSink>,
}

impl Simulator {
    /// A simulator with configuration `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg, sink: None }
    }

    /// Record every arrival, decision and applied action into `sink`.
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Simulate `policy` over tasks released at the given times.
    ///
    /// # Errors
    /// A policy that wedges (tasks remain but it never starts them), never
    /// reaches a decision fixpoint, double-starts a task or references an
    /// unknown one yields a [`SimError`] carrying the typed [`SchedError`]
    /// and the partial statistics up to the failure instant.
    pub fn run(
        &self,
        policy: &mut dyn SchedulePolicy,
        arrivals: &[(SimTask, f64)],
    ) -> Result<SimReport, SimError> {
        let machine = self.cfg.machine.clone();
        let disk_params = xprs_disk::DiskParams::from_rates(
            machine.seq_bw,
            machine.almost_seq_bw,
            machine.random_bw,
        );
        let mut run = Run {
            layout: StripedLayout::new(machine.n_disks),
            cfg: self.cfg.clone(),
            policy,
            queue: EventQueue::new(),
            tasks: arrivals
                .iter()
                .map(|(spec, _)| TaskRt {
                    spec: spec.clone(),
                    state: TaskState::Pending,
                    partition: None,
                    target_parallelism: 0,
                    ios_done: 0,
                    started_at: 0.0,
                    finished_at: 0.0,
                })
                .collect(),
            workers: Vec::new(),
            disks: (0..machine.n_disks)
                .map(|_| DiskRt {
                    state: DiskState::new(disk_params.clone()),
                    queue: Default::default(),
                    in_service: None,
                })
                .collect(),
            cpu_free: machine.n_procs,
            cpu_ready: Default::default(),
            cpu_busy_total: 0.0,
            now: 0.0,
            n_events: 0,
            need_decide: false,
            sink: self.sink.clone(),
        };
        emit(&run.sink, || TraceRecord::RunStart {
            driver: "des".to_string(),
            policy: run.policy.name().to_string(),
            machine: machine.clone(),
        });
        for (i, (_, at)) in arrivals.iter().enumerate() {
            run.queue.push(*at, EventKind::Arrival(i));
        }
        match run.main_loop() {
            Ok(()) => Ok(run.report()),
            Err(e) => {
                emit(&run.sink, || TraceRecord::Error {
                    now: run.now,
                    message: e.to_string(),
                });
                Err(SimError { source: e, partial: Box::new(run.report()) })
            }
        }
    }
}

impl<'p> Run<'p> {
    fn main_loop(&mut self) -> Result<(), SchedError> {
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.handle(ev);
            // Drain every event at this exact instant before consulting the
            // policy, so simultaneous arrivals are seen as one batch.
            while self.queue.peek_time() == Some(self.now) {
                let (_, ev) = self.queue.pop().expect("peeked");
                self.handle(ev);
            }
            if self.need_decide {
                self.need_decide = false;
                self.decide()?;
            }
        }
        let unfinished = self
            .tasks
            .iter()
            .filter(|t| !matches!(t.state, TaskState::Done))
            .count();
        if unfinished > 0 {
            return Err(SchedError::Wedged { policy: self.policy.name(), unfinished });
        }
        Ok(())
    }

    fn handle(&mut self, ev: EventKind) {
        self.n_events += 1;
        match ev {
            EventKind::Arrival(i) => {
                let profile = self.tasks[i].spec.profile.clone();
                let now = self.now;
                emit(&self.sink, || TraceRecord::Arrival { now, profile: profile.clone() });
                self.policy.on_arrival(now, profile);
                self.need_decide = true;
            }
            EventKind::DiskDone(d) => self.disk_done(d),
            EventKind::CpuDone(w) => self.cpu_done(w),
            EventKind::ApplyAdjust(task, x) => self.apply_adjust(task, x),
        }
    }

    // -- disk stage --------------------------------------------------------

    fn enqueue_io(&mut self, w: usize, global_block: u64) {
        let task = &self.tasks[self.workers[w].task];
        let d = self.layout.disk_of(global_block) as usize;
        let req = IoRequest {
            rel: task.spec.rel,
            local_block: self.layout.local_block(global_block),
            worker: WorkerId(w as u64),
            solo: task.target_parallelism == 1,
        };
        self.disks[d].queue.push_back((w, req));
        if self.disks[d].in_service.is_none() {
            self.start_disk(d);
        }
    }

    fn start_disk(&mut self, d: usize) {
        if let Some((w, req)) = self.disks[d].queue.pop_front() {
            let (_, dur) = self.disks[d].state.serve(&req);
            self.disks[d].in_service = Some(w);
            self.queue.push(self.now + dur, EventKind::DiskDone(d as u32));
        }
    }

    fn disk_done(&mut self, d: u32) {
        let d = d as usize;
        let w = self.disks[d].in_service.take().expect("DiskDone without service");
        self.start_disk(d);
        self.workers[w].io_inflight = false;
        if self.workers[w].processing {
            // The CPU stage is still chewing on the previous page; hold this
            // one in the worker's read-ahead buffer.
            self.workers[w].buffered = true;
        } else {
            // Page goes straight to the CPU stage, and the worker issues its
            // next read-ahead so I/O overlaps computation.
            self.begin_cpu(w);
            self.worker_fetch_next(w);
        }
    }

    /// Enter the CPU stage (queueing on the processor pool if necessary).
    fn begin_cpu(&mut self, w: usize) {
        self.workers[w].processing = true;
        if self.cpu_free > 0 {
            self.cpu_free -= 1;
            self.schedule_cpu(w);
        } else {
            self.cpu_ready.push_back(w);
        }
    }

    // -- cpu stage ----------------------------------------------------------

    fn schedule_cpu(&mut self, w: usize) {
        let burst = self.tasks[self.workers[w].task].spec.cpu_per_io;
        self.cpu_busy_total += burst;
        self.queue.push(self.now + burst, EventKind::CpuDone(w));
    }

    fn cpu_done(&mut self, w: usize) {
        match self.cpu_ready.pop_front() {
            Some(next) => self.schedule_cpu(next),
            None => self.cpu_free += 1,
        }
        self.workers[w].processing = false;
        self.complete_io(w);
    }

    fn complete_io(&mut self, w: usize) {
        let ti = self.workers[w].task;
        self.tasks[ti].ios_done += 1;
        if self.tasks[ti].ios_done == self.tasks[ti].spec.n_ios {
            self.tasks[ti].state = TaskState::Done;
            self.tasks[ti].finished_at = self.now;
            self.tasks[ti].partition = None;
            let id = self.tasks[ti].spec.profile.id;
            let now = self.now;
            emit(&self.sink, || TraceRecord::Finish { now, task: id });
            self.policy.on_finish(now, id);
            self.need_decide = true;
        } else if self.workers[w].buffered {
            // The read-ahead already landed: process it and keep the
            // pipeline full.
            self.workers[w].buffered = false;
            self.begin_cpu(w);
            self.worker_fetch_next(w);
        } else if !self.workers[w].io_inflight {
            // Pipeline empty (start-up, or the partition had nothing at the
            // last fetch): try again.
            self.worker_fetch_next(w);
        }
        // Otherwise the prefetch is still in flight; DiskDone continues.
    }

    // -- worker loop ---------------------------------------------------------

    fn worker_fetch_next(&mut self, w: usize) {
        let ti = self.workers[w].task;
        let slot = self.workers[w].slot;
        let task = &mut self.tasks[ti];
        let next_block = match &mut task.partition {
            Some(Partition::Page(p)) => p.next_page(slot),
            Some(Partition::Range(r)) => {
                r.next_key(slot).map(|k| task.spec.block_of_key(k as u64))
            }
            None => None, // task already completed
        };
        match next_block {
            Some(b) => {
                self.workers[w].idle = false;
                self.workers[w].io_inflight = true;
                self.enqueue_io(w, b);
            }
            None => {
                // Worker retired or drained for now. A later adjustment may
                // assign this slot more pages, so remember it is idle;
                // completion is detected by the ios_done counter.
                self.workers[w].idle = true;
            }
        }
    }

    // -- policy integration --------------------------------------------------

    fn decide(&mut self) -> Result<(), SchedError> {
        for _round in 0..FIXPOINT_ROUNDS {
            let snapshot: Vec<RunningTask> = self
                .tasks
                .iter()
                .filter(|t| matches!(t.state, TaskState::Running))
                .map(|t| RunningTask {
                    profile: t.spec.profile.clone(),
                    parallelism: t.target_parallelism as f64,
                    remaining_seq_time: t.spec.profile.seq_time
                        * (1.0 - t.ios_done as f64 / t.spec.n_ios as f64),
                })
                .collect();
            let actions = self.policy.decide(self.now, &snapshot);
            if actions.is_empty() {
                return Ok(());
            }
            let now = self.now;
            emit(&self.sink, || TraceRecord::Decide {
                now,
                running: snapshot.iter().map(RunningSnap::of).collect(),
                actions: actions.clone(),
            });
            for a in actions {
                let (id, parallelism) = (a.task(), a.parallelism());
                if !(parallelism > 0.0 && parallelism.is_finite()) {
                    return Err(SchedError::InvalidParallelism { task: id, parallelism });
                }
                match a {
                    Action::Start { .. } => self.start_task(id, parallelism)?,
                    Action::Adjust { .. } => {
                        let ti = self.task_index(id)?;
                        let x = to_workers(parallelism, self.cfg.machine.n_procs);
                        // The policy sees its target immediately; the slaves
                        // converge after the protocol round-trip.
                        self.tasks[ti].target_parallelism = x;
                        self.queue.push(
                            self.now + self.cfg.adjust_latency,
                            EventKind::ApplyAdjust(ti, x),
                        );
                    }
                }
                emit(&self.sink, || TraceRecord::Applied { now, action: a });
            }
        }
        Err(SchedError::FixpointDiverged { policy: self.policy.name(), rounds: FIXPOINT_ROUNDS })
    }

    fn task_index(&self, id: TaskId) -> Result<usize, SchedError> {
        self.tasks
            .iter()
            .position(|t| t.spec.profile.id == id)
            .ok_or(SchedError::UnknownTask { task: id })
    }

    fn start_task(&mut self, id: TaskId, parallelism: f64) -> Result<(), SchedError> {
        let ti = self.task_index(id)?;
        if !matches!(self.tasks[ti].state, TaskState::Pending) {
            return Err(SchedError::AlreadyRunning { task: id });
        }
        let x = to_workers(parallelism, self.cfg.machine.n_procs);
        let n_ios = self.tasks[ti].spec.n_ios;
        let partition = match self.tasks[ti].spec.access {
            AccessPattern::SeqScan => Partition::Page(PagePartition::new(n_ios, x)),
            AccessPattern::IndexScan { .. } => {
                Partition::Range(RangePartition::new(0, n_ios as i64 - 1, x))
            }
        };
        self.tasks[ti].partition = Some(partition);
        self.tasks[ti].state = TaskState::Running;
        self.tasks[ti].target_parallelism = x;
        self.tasks[ti].started_at = self.now;
        for slot in 0..x as usize {
            self.spawn_worker(ti, slot);
        }
        Ok(())
    }

    fn apply_adjust(&mut self, ti: usize, x: u32) {
        if matches!(self.tasks[ti].state, TaskState::Done) {
            return; // the task beat the protocol to the finish line
        }
        let info = match &mut self.tasks[ti].partition {
            Some(Partition::Page(p)) => p.adjust(x),
            Some(Partition::Range(r)) => r.adjust(x),
            None => return,
        };
        for slot in info.new_slots {
            self.spawn_worker(ti, slot);
        }
        // Retiring slots stop by themselves once they pass the boundary; but
        // slots whose worker already drained may have been handed fresh
        // pages in the new assignment — wake the ones with an empty pipeline.
        let idlers: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.task == ti && w.idle && !w.io_inflight && !w.processing && !w.buffered
            })
            .map(|(i, _)| i)
            .collect();
        for w in idlers {
            self.worker_fetch_next(w);
        }
    }

    fn spawn_worker(&mut self, ti: usize, slot: usize) {
        let w = self.workers.len();
        self.workers.push(WorkerRt {
            task: ti,
            slot,
            idle: true,
            io_inflight: false,
            processing: false,
            buffered: false,
        });
        self.worker_fetch_next(w);
    }

    // -- reporting ------------------------------------------------------------

    fn report(&self) -> SimReport {
        let mut disk = ArrayStats::default();
        for d in &self.disks {
            disk.sequential += d.state.count_of(ServiceClass::Sequential);
            disk.almost_sequential += d.state.count_of(ServiceClass::AlmostSequential);
            disk.random += d.state.count_of(ServiceClass::Random);
            disk.busy_time += d.state.busy_time();
        }
        SimReport {
            elapsed: self.now,
            task_times: self
                .tasks
                .iter()
                .map(|t| (t.spec.profile.id, t.started_at, t.finished_at))
                .collect(),
            disk,
            cpu_busy: self.cpu_busy_total,
            n_events: self.n_events,
        }
    }
}

/// Convert a policy's (possibly fractional) parallelism to whole workers.
fn to_workers(x: f64, n_procs: u32) -> u32 {
    (x.round() as i64).clamp(1, n_procs as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_disk::RelId;
    use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    use xprs_scheduler::intra::IntraOnly;
    use xprs_scheduler::{IoKind, TaskProfile};

    fn cfg() -> SimConfig {
        SimConfig::paper_default()
    }

    fn seq_task(id: u64, seq_time: f64, rate: f64) -> SimTask {
        let p = TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Sequential);
        SimTask::from_profile(p, RelId(id + 1), &xprs_disk::DiskParams::paper_default())
    }

    fn rnd_task(id: u64, seq_time: f64, rate: f64) -> SimTask {
        let p = TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Random);
        SimTask::from_profile(p, RelId(id + 1), &xprs_disk::DiskParams::paper_default())
    }

    #[test]
    fn solo_sequential_task_matches_its_calibrated_rate() {
        // One task, parallelism 1 under INTRA-ONLY? IntraOnly would use
        // maxp — force parallelism 1 via a single-processor machine.
        let mut c = cfg();
        c.machine.n_procs = 1;
        let t = seq_task(0, 10.0, 50.0); // 500 pages at 50 io/s solo
        let mut policy = IntraOnly::new(c.machine.clone(), true);
        let report = Simulator::new(c).run(&mut policy, &[(t, 0.0)]).expect("sim");
        // Solo synchronous backend: elapsed ≈ seq_time (first I/O is a cold
        // random seek, the rest sequential).
        assert!(
            (report.elapsed - 10.0).abs() < 0.1,
            "expected ≈10 s, got {}",
            report.elapsed
        );
        // Virtually all I/Os at the sequential rate.
        assert!(report.disk.sequential > 490);
    }

    #[test]
    fn parallel_scan_sees_almost_sequential_service() {
        let t = seq_task(0, 10.0, 60.0); // IO-bound: maxp = 4 workers
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t, 0.0)]).expect("sim");
        // With 4 workers interleaving on each disk, service degrades to the
        // almost-sequential class for the bulk of requests.
        assert!(
            report.disk.almost_sequential > report.disk.sequential,
            "expected almost-seq to dominate: {:?}",
            report.disk
        );
    }

    #[test]
    fn parallelism_speeds_up_a_cpu_bound_task_near_linearly() {
        let t = seq_task(0, 16.0, 5.0); // 80 pages, 0.1897 s CPU each
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t.clone(), 0.0)]).expect("sim");
        // 8 processors: elapsed near 16/8 = 2 (plus I/O pipeline slack).
        assert!(
            report.elapsed < 16.0 / 8.0 * 1.3,
            "poor speedup: {} s for 16 s of work on 8 CPUs",
            report.elapsed
        );
        assert!(report.elapsed > 16.0 / 8.0 * 0.9);
    }

    #[test]
    fn index_scan_pays_random_service() {
        let t = rnd_task(0, 10.0, 30.0);
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &[(t, 0.0)]).expect("sim");
        assert!(
            report.disk.random as f64 > 0.95 * report.disk.total() as f64,
            "index scan should be (almost) all random I/O: {:?}",
            report.disk
        );
    }

    #[test]
    fn two_task_mix_beats_serial_execution_under_with_adj() {
        let tasks = vec![
            (seq_task(0, 20.0, 65.0), 0.0),
            (seq_task(1, 20.0, 6.0), 0.0),
        ];
        let sim = Simulator::new(cfg());
        let mut intra = IntraOnly::new(cfg().machine, true);
        let t_intra = sim.run(&mut intra, &tasks).expect("sim").elapsed;
        let mut adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        let t_adj = sim.run(&mut adj, &tasks).expect("sim").elapsed;
        assert!(
            t_adj < t_intra,
            "inter-operation parallelism should win on a mixed pair: {t_adj} vs {t_intra}"
        );
    }

    #[test]
    fn completion_notifies_policy_and_report_is_consistent() {
        let tasks = vec![(seq_task(0, 5.0, 40.0), 0.0), (seq_task(1, 5.0, 10.0), 1.0)];
        let mut policy = IntraOnly::new(cfg().machine, true);
        let report = Simulator::new(cfg()).run(&mut policy, &tasks).expect("sim");
        assert_eq!(report.task_times.len(), 2);
        for (_, start, finish) in &report.task_times {
            assert!(finish > start);
        }
        // Task 1 released at t=1 cannot start earlier.
        let t1 = report.task_times.iter().find(|(id, _, _)| *id == TaskId(1)).unwrap();
        assert!(t1.1 >= 1.0);
        assert!(report.elapsed >= t1.2 - 1e-12);
        assert!(report.n_events > 0);
    }

    #[test]
    fn utilization_metrics_are_sane() {
        let tasks = vec![(seq_task(0, 20.0, 65.0), 0.0), (seq_task(1, 20.0, 6.0), 0.0)];
        let mut adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        let report = Simulator::new(cfg()).run(&mut adj, &tasks).expect("sim");
        let cpu = report.cpu_utilization(8);
        let dsk = report.disk_utilization(4);
        assert!(cpu > 0.0 && cpu <= 1.0, "cpu utilization {cpu}");
        assert!(dsk > 0.0 && dsk <= 1.0, "disk utilization {dsk}");
    }

    /// A policy that always emits an Adjust — it can never reach a fixpoint.
    struct NeverSettles {
        machine: MachineConfig,
        started: bool,
        flip: bool,
    }

    impl SchedulePolicy for NeverSettles {
        fn name(&self) -> &'static str {
            "NEVER-SETTLES"
        }
        fn machine(&self) -> &MachineConfig {
            &self.machine
        }
        fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
        fn on_finish(&mut self, _now: f64, _id: TaskId) {}
        fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
            if !self.started {
                self.started = true;
                return vec![Action::Start { id: TaskId(0), parallelism: 1.0 }];
            }
            self.flip = !self.flip;
            let x = if self.flip { 2.0 } else { 3.0 };
            vec![Action::Adjust { id: TaskId(0), parallelism: x }]
        }
    }

    /// A policy that starts a task the driver never heard of.
    struct RogueStart {
        machine: MachineConfig,
        done: bool,
    }

    impl SchedulePolicy for RogueStart {
        fn name(&self) -> &'static str {
            "ROGUE-START"
        }
        fn machine(&self) -> &MachineConfig {
            &self.machine
        }
        fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
        fn on_finish(&mut self, _now: f64, _id: TaskId) {}
        fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
            if self.done {
                return vec![];
            }
            self.done = true;
            vec![Action::Start { id: TaskId(999), parallelism: 1.0 }]
        }
    }

    /// A policy that starts the same task twice in one decision batch.
    struct DoubleStart {
        machine: MachineConfig,
        done: bool,
    }

    impl SchedulePolicy for DoubleStart {
        fn name(&self) -> &'static str {
            "DOUBLE-START"
        }
        fn machine(&self) -> &MachineConfig {
            &self.machine
        }
        fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
        fn on_finish(&mut self, _now: f64, _id: TaskId) {}
        fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
            if self.done {
                return vec![];
            }
            self.done = true;
            vec![
                Action::Start { id: TaskId(0), parallelism: 1.0 },
                Action::Start { id: TaskId(0), parallelism: 2.0 },
            ]
        }
    }

    #[test]
    fn diverging_policy_is_a_typed_error_with_partial_stats() {
        let mut policy = NeverSettles { machine: cfg().machine, started: false, flip: false };
        let err = Simulator::new(cfg())
            .run(&mut policy, &[(seq_task(0, 5.0, 40.0), 0.0)])
            .expect_err("divergence must surface");
        assert_eq!(
            err.source,
            SchedError::FixpointDiverged { policy: "NEVER-SETTLES", rounds: FIXPOINT_ROUNDS }
        );
        // Partial stats are still usable: the failure instant and task table.
        assert_eq!(err.partial.task_times.len(), 1);
        assert!(err.to_string().contains("did not reach a fixpoint"));
    }

    #[test]
    fn unknown_task_reference_is_a_typed_error() {
        let mut policy = RogueStart { machine: cfg().machine, done: false };
        let err = Simulator::new(cfg())
            .run(&mut policy, &[(seq_task(0, 5.0, 40.0), 0.0)])
            .expect_err("unknown task must surface");
        assert_eq!(err.source, SchedError::UnknownTask { task: TaskId(999) });
    }

    #[test]
    fn double_start_is_a_typed_error() {
        let mut policy = DoubleStart { machine: cfg().machine, done: false };
        let err = Simulator::new(cfg())
            .run(&mut policy, &[(seq_task(0, 5.0, 40.0), 0.0)])
            .expect_err("double start must surface");
        assert_eq!(err.source, SchedError::AlreadyRunning { task: TaskId(0) });
    }

    #[test]
    fn wedged_policy_is_a_typed_error() {
        /// Never starts anything at all.
        struct DoNothing(MachineConfig);
        impl SchedulePolicy for DoNothing {
            fn name(&self) -> &'static str {
                "DO-NOTHING"
            }
            fn machine(&self) -> &MachineConfig {
                &self.0
            }
            fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
            fn on_finish(&mut self, _now: f64, _id: TaskId) {}
            fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
                vec![]
            }
        }
        let mut policy = DoNothing(cfg().machine);
        let err = Simulator::new(cfg())
            .run(&mut policy, &[(seq_task(0, 5.0, 40.0), 0.0)])
            .expect_err("wedge must surface");
        assert_eq!(err.source, SchedError::Wedged { policy: "DO-NOTHING", unfinished: 1 });
    }

    #[test]
    fn traced_des_run_replays_through_the_recorded_policy() {
        use std::sync::{Arc, Mutex};
        use xprs_scheduler::trace::{action_stream, parse_jsonl, replay_decisions, JsonlSink};

        let tasks = vec![
            (seq_task(0, 20.0, 65.0), 0.0),
            (seq_task(1, 20.0, 6.0), 0.0),
        ];
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
        let shared: xprs_scheduler::trace::SharedSink = sink.clone();
        let mut adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        Simulator::new(cfg())
            .with_trace(shared)
            .run(&mut adj, &tasks)
            .expect("sim");

        // The simulator temporary was dropped, so this is the sole owner.
        let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
        let owned = cell.into_inner().unwrap();
        assert!(owned.io_error().is_none());
        let text = String::from_utf8(owned.into_inner()).unwrap();
        let records = parse_jsonl(&text).expect("well-formed trace");
        let recorded = action_stream(&records);
        assert!(!recorded.is_empty(), "DES trace should record applied actions");

        // A fresh policy fed the recorded event stream re-derives every
        // recorded decision, even though the DES clock is not virtual time.
        let mut fresh = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(cfg().machine));
        let checked = replay_decisions(&records, &mut fresh).expect("replay");
        assert!(checked > 0);
    }
}
