//! The event queue: a time-ordered heap with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A task enters the system (index into the simulator's task table).
    Arrival(usize),
    /// Disk `disk` finished its in-service request.
    DiskDone(u32),
    /// A processor finished worker `worker`'s CPU burst for one page.
    CpuDone(usize),
    /// A deferred parallelism adjustment lands (task, new parallelism).
    ApplyAdjust(usize, u32),
}

#[derive(Debug, Clone)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (then
        // first-inserted) event pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite() && time >= 0.0, "event at invalid time {time}");
        self.heap.push(Event { time, seq: self.seq, kind });
        self.seq += 1;
    }

    /// Pop the earliest event as `(time, kind)`.
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::DiskDone(0));
        q.push(1.0, EventKind::Arrival(0));
        q.push(3.0, EventKind::CpuDone(5));
        assert_eq!(q.pop(), Some((1.0, EventKind::Arrival(0))));
        assert_eq!(q.pop(), Some((2.0, EventKind::DiskDone(0))));
        assert_eq!(q.pop(), Some((3.0, EventKind::CpuDone(5))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(1.0, EventKind::Arrival(2));
        assert_eq!(q.pop().unwrap().1, EventKind::Arrival(0));
        assert_eq!(q.pop().unwrap().1, EventKind::Arrival(1));
        assert_eq!(q.pop().unwrap().1, EventKind::Arrival(2));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::DiskDone(1));
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid time")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, EventKind::Arrival(0));
    }
}
