//! Measurement output of a simulation run.

use xprs_disk::ArrayStats;
use xprs_scheduler::TaskId;

/// What one simulation run measured.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last task (the workload's turnaround time —
    /// the quantity Figure 7 plots).
    pub elapsed: f64,
    /// Per-task `(id, start, finish)`.
    pub task_times: Vec<(TaskId, f64, f64)>,
    /// Aggregate disk statistics (service-class mix, busy time).
    pub disk: ArrayStats,
    /// Total processor-busy seconds.
    pub cpu_busy: f64,
    /// Events processed (simulation effort indicator).
    pub n_events: u64,
}

impl SimReport {
    /// Time-averaged processor utilization.
    pub fn cpu_utilization(&self, n_procs: u32) -> f64 {
        if self.elapsed > 0.0 {
            self.cpu_busy / (n_procs as f64 * self.elapsed)
        } else {
            0.0
        }
    }

    /// Time-averaged disk utilization.
    pub fn disk_utilization(&self, n_disks: u32) -> f64 {
        self.disk.utilization(n_disks, self.elapsed)
    }

    /// Mean task response time given each task's release time.
    pub fn mean_response_time(&self, releases: &[(TaskId, f64)]) -> f64 {
        if self.task_times.is_empty() {
            return 0.0;
        }
        let rel = |id: TaskId| {
            releases
                .iter()
                .find(|(t, _)| *t == id)
                .map(|(_, r)| *r)
                .unwrap_or(0.0)
        };
        let sum: f64 = self.task_times.iter().map(|(id, _, fin)| fin - rel(*id)).sum();
        sum / self.task_times.len() as f64
    }

    /// Finish time of a specific task.
    pub fn finish_of(&self, id: TaskId) -> Option<f64> {
        self.task_times.iter().find(|(t, _, _)| *t == id).map(|(_, _, f)| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            elapsed: 10.0,
            task_times: vec![(TaskId(0), 0.0, 4.0), (TaskId(1), 2.0, 10.0)],
            disk: ArrayStats { sequential: 50, almost_sequential: 30, random: 20, busy_time: 20.0 },
            cpu_busy: 40.0,
            n_events: 123,
        }
    }

    #[test]
    fn utilizations() {
        let r = report();
        assert!((r.cpu_utilization(8) - 0.5).abs() < 1e-12);
        assert!((r.disk_utilization(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn response_times_subtract_releases() {
        let r = report();
        let rel = vec![(TaskId(0), 0.0), (TaskId(1), 2.0)];
        assert!((r.mean_response_time(&rel) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn finish_lookup() {
        let r = report();
        assert_eq!(r.finish_of(TaskId(1)), Some(10.0));
        assert_eq!(r.finish_of(TaskId(9)), None);
    }
}
