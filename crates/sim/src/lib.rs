//! # xprs-sim
//!
//! A discrete-event simulator of the XPRS machine: `N` processors sharing
//! memory, a striped disk array with per-request service times from
//! `xprs-disk`, and slave-backend workers executing page-partitioned
//! sequential scans or range-partitioned index scans, one synchronous
//! I/O-then-CPU cycle per page — exactly the execution structure whose
//! aggregate behaviour the paper's scheduling formulas model.
//!
//! Any [`xprs_scheduler::SchedulePolicy`] can drive the simulation: the
//! engine delivers task arrivals and completions to the policy and applies
//! its `Start`/`Adjust` actions, implementing `Adjust` with the *actual*
//! Section 2.4 max-page / interval-re-partitioning protocols from
//! `xprs-storage::partition` (plus a configurable protocol latency).
//!
//! The difference between this crate and
//! [`xprs_scheduler::fluid`] is the level of modelling: the fluid engine
//! *is* the paper's cost arithmetic (`IO_i(x) = C_i·x`, bandwidth caps,
//! interpolated interference), while this engine measures what an actual
//! machine with queues, heads and integer workers would do. Benchmarks run
//! both and report the shapes side by side.

pub mod engine;
pub mod event;
pub mod metrics;
pub mod task;

pub use engine::{SimConfig, SimError, Simulator};
pub use metrics::SimReport;
pub use task::{AccessPattern, SimTask};
