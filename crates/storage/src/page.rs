//! Slotted 8 KB heap pages.
//!
//! XPRS uses an 8 KB disk page. A page stores tuples in slots; the free-space
//! accounting models a slotted layout (fixed header, line-pointer array
//! growing from the front, tuple payloads from the back) without serializing
//! to raw bytes — the *capacity* behaviour is what the experiments depend on
//! (one `r_max` tuple per page, hundreds of `r_min` tuples per page).

use crate::tuple::Tuple;

/// Page size in bytes, as in XPRS.
pub const PAGE_SIZE: usize = 8192;

/// Fixed page-header bytes (LSN, flags, free-space pointers).
pub const PAGE_HEADER: usize = 24;

/// One slotted heap page.
#[derive(Debug, Clone, Default)]
pub struct Page {
    tuples: Vec<Tuple>,
    used: usize,
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        Page { tuples: Vec::new(), used: PAGE_HEADER }
    }

    /// Bytes available for further tuples.
    pub fn free_space(&self) -> usize {
        PAGE_SIZE - self.used
    }

    /// Would `t` fit?
    pub fn fits(&self, t: &Tuple) -> bool {
        t.stored_size() <= self.free_space()
    }

    /// Insert a tuple, returning its slot, or `None` if it does not fit.
    /// A tuple larger than an entire empty page is rejected with a panic —
    /// this storage layer has no TOAST/overflow mechanism, and silently
    /// dropping it would corrupt scans.
    pub fn insert(&mut self, t: Tuple) -> Option<u16> {
        assert!(
            t.stored_size() <= PAGE_SIZE - PAGE_HEADER,
            "tuple of {} bytes exceeds page capacity",
            t.stored_size()
        );
        if !self.fits(&t) {
            return None;
        }
        self.used += t.stored_size();
        self.tuples.push(t);
        Some((self.tuples.len() - 1) as u16)
    }

    /// The tuple in `slot`, if any.
    pub fn get(&self, slot: u16) -> Option<&Tuple> {
        self.tuples.get(slot as usize)
    }

    /// Number of tuples stored.
    pub fn n_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Iterate over `(slot, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (i as u16, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn tuple_of_size(total: usize) -> Tuple {
        // stored_size = 4 + 2 + 4 (int) + 4 + len  ⇒ len = total − 14.
        assert!(total >= 14);
        Tuple::from_values(vec![Datum::Int(0), Datum::Text("x".repeat(total - 14))])
    }

    #[test]
    fn empty_page_has_header_overhead_only() {
        let p = Page::new();
        assert_eq!(p.free_space(), PAGE_SIZE - PAGE_HEADER);
        assert_eq!(p.n_tuples(), 0);
    }

    #[test]
    fn insert_until_full() {
        let mut p = Page::new();
        let t = tuple_of_size(100);
        let mut n = 0;
        while p.insert(t.clone()).is_some() {
            n += 1;
        }
        // (8192 − 24) / 100 = 81 tuples of 100 bytes.
        assert_eq!(n, 81);
        assert_eq!(p.n_tuples(), 81);
        assert!(p.free_space() < 100);
    }

    #[test]
    fn one_giant_tuple_fills_the_page() {
        // The r_max construction: one tuple per 8K page.
        let mut p = Page::new();
        let t = tuple_of_size(PAGE_SIZE - PAGE_HEADER);
        assert_eq!(p.insert(t), Some(0));
        assert_eq!(p.free_space(), 0);
        assert!(p.insert(tuple_of_size(14)).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_tuple_panics() {
        Page::new().insert(tuple_of_size(PAGE_SIZE));
    }

    #[test]
    fn slots_are_stable_and_iterable() {
        let mut p = Page::new();
        for i in 0..5 {
            let t = Tuple::from_values(vec![Datum::Int(i), Datum::Null]);
            assert_eq!(p.insert(t), Some(i as u16));
        }
        let collected: Vec<i32> = p.iter().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.get(3).unwrap().get(0), &Datum::Int(3));
        assert!(p.get(9).is_none());
    }
}
