//! Sorted-run utilities for parallel join materialization.
//!
//! A fragment's workers emit **locally sorted runs** (each worker sorts its
//! output batch before flushing it into the shared sink), so the master
//! never has to re-sort the whole fragment output: it performs a **stable
//! k-way merge** of the runs — O(n log k) instead of O(n log n), and the
//! merge itself can be farmed out to the worker pool by first splitting the
//! runs at key boundaries ([`split_runs`]) into disjoint, independently
//! mergeable key sub-ranges.
//!
//! On top of the merged (key-sorted) rows sits a [`CsrIndex`]: sorted unique
//! keys, a CSR-style offsets array, and a positions array, built by one
//! counting pass. A probe is a binary search (or a cursor-advancing seek for
//! merge joins) plus a slice borrow — **zero heap allocation per probe**,
//! unlike the `HashMap<key, Vec<pos>>` it replaces.
//!
//! Everything here is generic over the row payload: a row is `(i32, T)`
//! where the `i32` is the join key.

/// Is `run` sorted by key (ascending, duplicates allowed)?
pub fn is_sorted_run<T>(run: &[(i32, T)]) -> bool {
    run.windows(2).all(|w| w[0].0 <= w[1].0)
}

/// Stable k-way merge of key-sorted runs into one key-sorted vector.
///
/// Ties are broken by run index, then by position within the run. This
/// makes the merge *the* merge step of a stable merge sort: splitting a
/// vector into consecutive chunks, stably sorting each chunk, and merging
/// the chunks with this function reproduces a stable sort of the whole
/// vector element for element. The executor's parity tests lean on exactly
/// that property.
///
/// Implemented as a bottom-up pairwise merge — adjacent runs merge
/// two-at-a-time, level by level, preferring the left (earlier) run on key
/// ties. Same O(n log k) comparison bound as a tournament-heap merge, but
/// the inner loop is a branch-light two-pointer walk over contiguous
/// memory, which in practice beats both a heap (whose per-element
/// sift costs dominate at large k — worker sinks produce one small run per
/// flush batch, so k is in the hundreds) and a full re-sort of the
/// concatenation.
///
/// Rows are moved, never cloned.
pub fn merge_runs<T>(mut runs: Vec<Vec<(i32, T)>>) -> Vec<(i32, T)> {
    debug_assert!(runs.iter().all(|r| is_sorted_run(r)), "merge_runs fed an unsorted run");
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge, left run first among equal keys.
fn merge_two<T>(a: Vec<(i32, T)>, b: Vec<(i32, T)>) -> Vec<(i32, T)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(&(ka, _)), Some(&(kb, _))) => {
                let src = if ka <= kb { &mut ai } else { &mut bi };
                out.push(src.next().expect("peeked row"));
            }
            (Some(_), None) => {
                out.extend(ai);
                return out;
            }
            (None, _) => {
                out.extend(bi);
                return out;
            }
        }
    }
}

/// What [`split_runs_stats`] did to the key space: which heavy-hitter keys
/// were carved across groups, and how many rows each emitted group holds
/// (in group order; trivially empty interval groups are dropped).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Keys detected as heavy hitters and carved into run-sub-range chunks,
    /// in ascending key order.
    pub hot_keys: Vec<i32>,
    /// Rows per emitted group, aligned with the returned groups.
    pub group_rows: Vec<usize>,
}

/// Split key-sorted runs into independently mergeable groups covering
/// non-decreasing key ranges, so each group can be merged concurrently and
/// the merged groups concatenated in order. See [`split_runs_stats`] for
/// the boundary-selection and heavy-hitter rules; this wrapper discards the
/// statistics.
pub fn split_runs<T>(runs: Vec<Vec<(i32, T)>>, ways: usize) -> Vec<RunGroup<T>> {
    split_runs_stats(runs, ways).0
}

/// One independently mergeable group of key-sorted runs, as produced by
/// [`split_runs`] / [`split_runs_stats`].
pub type RunGroup<T> = Vec<Vec<(i32, T)>>;

/// Split key-sorted runs into independently mergeable groups, returning the
/// groups plus [`SplitStats`].
///
/// **Boundary selection** is a weighted key sample: sample positions are
/// spread evenly over the *concatenation* of the runs, so a run contributes
/// samples in proportion to its length and every sample stands for roughly
/// `total / samples` rows — quantiles of the sample approximate quantiles
/// of the merged output regardless of how unevenly the rows are spread
/// across runs. Boundaries are applied with binary search
/// (`partition_point`) and a strict `<` cut, so an interval group keeps
/// every run (possibly empty) in the original run order.
///
/// **Heavy hitters**: any key holding strictly more than an even `1/ways`
/// share of the sample mass gets hard cut points at `k` and `k + 1`,
/// isolating it in a single-key group. A single-key group whose *actual*
/// row count exceeds the even share is then carved into
/// `⌊rows · ways / total⌋` (clamped to `[1, ways]`) run-sub-range chunks:
/// the group's rows are flattened in (run index, position) order — exactly
/// the order the stable merge would emit them, since every row bears the
/// same key — and cut into near-equal consecutive chunks, each emitted as
/// its own one-run group. A hot key therefore no longer serializes the
/// merge, and because a one-run group *is* its own merge, the concatenation
/// of the groups' [`merge_runs`] outputs still equals `merge_runs` of the
/// original runs byte for byte, tie-breaks included.
///
/// Consequences for callers: consecutive groups cover non-decreasing key
/// ranges but may *share* one (hot) key at the seam; the group count can
/// exceed `ways` when hot keys are carved; trivially empty groups are
/// dropped. Rows are moved via `split_off`, never cloned.
pub fn split_runs_stats<T>(
    runs: Vec<Vec<(i32, T)>>,
    ways: usize,
) -> (Vec<RunGroup<T>>, SplitStats) {
    let total: usize = runs.iter().map(Vec::len).sum();
    if ways <= 1 || total == 0 {
        let stats = SplitStats { hot_keys: Vec::new(), group_rows: vec![total] };
        return (vec![runs], stats);
    }
    // Weighted sample: probe positions evenly spaced over the concatenated
    // rows. Positions ascend, so one cumulative cursor walks the runs once.
    let n_samples = (ways * 16).clamp(1, total);
    let mut samples: Vec<i32> = Vec::with_capacity(n_samples);
    {
        let mut run_idx = 0usize;
        let mut cum = 0usize; // rows preceding runs[run_idx]
        for j in 0..n_samples {
            let pos = j * total / n_samples;
            while pos >= cum + runs[run_idx].len() {
                cum += runs[run_idx].len();
                run_idx += 1;
            }
            samples.push(runs[run_idx][pos - cum].0);
        }
    }
    samples.sort_unstable();
    // Heavy hitters by sample mass: strictly more than an even 1/ways share.
    let mut hot_candidates: Vec<i32> = Vec::new();
    let mut i = 0;
    while i < samples.len() {
        let mut j = i + 1;
        while j < samples.len() && samples[j] == samples[i] {
            j += 1;
        }
        if (j - i) * ways > samples.len() {
            hot_candidates.push(samples[i]);
        }
        i = j;
    }
    let mut bounds: Vec<i32> =
        (1..ways).map(|i| samples[i * samples.len() / ways]).collect();
    // Hard cuts isolate each hot candidate in its own single-key group.
    for &h in &hot_candidates {
        bounds.push(h);
        if let Some(above) = h.checked_add(1) {
            bounds.push(above);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    // Split from the highest bound down: `split_off` copies only the tail
    // it removes, so taking groups back-to-front moves every row at most
    // once (and the lowest group never moves at all).
    let mut groups_rev: Vec<Vec<Vec<(i32, T)>>> = Vec::with_capacity(bounds.len() + 1);
    let mut rest = runs;
    for &b in bounds.iter().rev() {
        // Rows with key >= b split off into this group; `rest` keeps the
        // head. Equal keys always stay together (strict `<` cut point).
        let group: Vec<Vec<(i32, T)>> = rest
            .iter_mut()
            .map(|run| run.split_off(run.partition_point(|&(k, _)| k < b)))
            .collect();
        groups_rev.push(group);
    }
    groups_rev.push(rest);
    groups_rev.reverse();

    // Carve pass: a single-key group heavier than the even share splits
    // into run-sub-range chunks (see the function docs for why the
    // concatenation stays byte-identical).
    let mut out: Vec<Vec<Vec<(i32, T)>>> = Vec::with_capacity(groups_rev.len());
    let mut stats = SplitStats::default();
    for group in groups_rev {
        let rows: usize = group.iter().map(Vec::len).sum();
        if rows == 0 {
            continue;
        }
        let lo = group.iter().filter_map(|r| r.first()).map(|&(k, _)| k).min();
        let hi = group.iter().filter_map(|r| r.last()).map(|&(k, _)| k).max();
        let parts = (rows * ways / total).min(ways).min(rows);
        if lo == hi && parts >= 2 {
            stats.hot_keys.push(lo.expect("non-empty group has a first key"));
            let mut flat = Vec::with_capacity(rows);
            for run in group {
                flat.extend(run);
            }
            let (base, extra) = (rows / parts, rows % parts);
            let mut it = flat.into_iter();
            for c in 0..parts {
                let chunk: Vec<(i32, T)> =
                    it.by_ref().take(base + usize::from(c < extra)).collect();
                stats.group_rows.push(chunk.len());
                out.push(vec![chunk]);
            }
        } else {
            stats.group_rows.push(rows);
            out.push(group);
        }
    }
    if out.is_empty() {
        // total > 0 guarantees at least one non-empty group; keep the
        // invariant explicit for the degenerate ways where it is not.
        stats.group_rows.push(0);
        out.push(Vec::new());
    }
    (out, stats)
}

/// A CSR-style (compressed sparse row) index over key-sorted rows: sorted
/// unique `keys`, an `offsets` array one longer than `keys`, and a
/// `positions` array of row indices grouped by key — the rows bearing
/// `keys[i]` are `positions[offsets[i]..offsets[i+1]]`.
///
/// Built by a single counting pass over already-sorted rows; probing is a
/// binary search ([`CsrIndex::lookup`]) or a monotone cursor seek
/// ([`CsrIndex::seek`]) returning a borrowed slice — no heap allocation
/// per probe, in contrast to the hash-map-of-vectors it replaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrIndex {
    keys: Vec<i32>,
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl CsrIndex {
    /// Build from key-sorted rows in one counting pass.
    ///
    /// # Panics
    /// Panics (debug) if `rows` is not key-sorted, or if it holds more than
    /// `u32::MAX` rows.
    pub fn from_sorted<T>(rows: &[(i32, T)]) -> Self {
        debug_assert!(is_sorted_run(rows), "CSR build over unsorted rows");
        assert!(rows.len() <= u32::MAX as usize, "CSR index limited to u32 positions");
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut positions = Vec::with_capacity(rows.len());
        for (i, &(k, _)) in rows.iter().enumerate() {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(i as u32); // start of this key's group
            }
            positions.push(i as u32);
        }
        offsets.push(rows.len() as u32); // end sentinel
        CsrIndex { keys, offsets, positions }
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// The sorted unique keys.
    pub fn keys(&self) -> &[i32] {
        &self.keys
    }

    /// Row positions bearing `key` (empty if absent): binary search plus a
    /// slice borrow, zero allocation.
    pub fn lookup(&self, key: i32) -> &[u32] {
        let i = self.keys.partition_point(|&k| k < key);
        self.group(i, key)
    }

    /// Cursor-based lookup for merge joins: `cursor` is an index into the
    /// unique-key array that only moves forward while probe keys ascend
    /// (amortized O(1) per probe over a sorted probe stream). A probe key
    /// *below* the cursor — possible when a worker's key range is
    /// re-partitioned mid-run — falls back to a binary re-seek, so the
    /// result is always exactly [`CsrIndex::lookup`]'s.
    pub fn seek(&self, key: i32, cursor: &mut usize) -> &[u32] {
        let n = self.keys.len();
        let mut i = (*cursor).min(n);
        if i > 0 && self.keys[i - 1] >= key {
            // The cursor overshot this probe (key stream regressed).
            i = self.keys.partition_point(|&k| k < key);
        } else {
            while i < n && self.keys[i] < key {
                i += 1;
            }
        }
        *cursor = i;
        self.group(i, key)
    }

    fn group(&self, i: usize, key: i32) -> &[u32] {
        if i < self.keys.len() && self.keys[i] == key {
            &self.positions[self.offsets[i] as usize..self.offsets[i + 1] as usize]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(keys: &[i32]) -> Vec<(i32, usize)> {
        keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
    }

    #[test]
    fn merge_equals_stable_sort_of_concatenation() {
        let original = keyed(&[5, 1, 5, -3, 2, 2, 5, 0, -3, 7, 1, 1]);
        for chunk in [1usize, 2, 3, 5, 12, 20] {
            let mut runs: Vec<Vec<(i32, usize)>> =
                original.chunks(chunk).map(|c| c.to_vec()).collect();
            for r in &mut runs {
                r.sort_by_key(|&(k, _)| k); // stable
            }
            let merged = merge_runs(runs);
            let mut want = original.clone();
            want.sort_by_key(|&(k, _)| k); // stable
            assert_eq!(merged, want, "chunk size {chunk}");
        }
    }

    #[test]
    fn merge_handles_empty_and_single_runs() {
        assert!(merge_runs::<u8>(vec![]).is_empty());
        assert!(merge_runs::<u8>(vec![vec![], vec![]]).is_empty());
        let one = vec![(1, 9u8), (4, 2)];
        assert_eq!(merge_runs(vec![vec![], one.clone(), vec![]]), one);
    }

    #[test]
    fn split_then_merge_equals_direct_merge() {
        let original = keyed(&[9, 3, 3, 8, 1, 1, 1, 6, 2, 9, 9, 0, 5, 4, 4, 7]);
        let mk = |chunk: usize| -> Vec<Vec<(i32, usize)>> {
            let mut runs: Vec<Vec<(i32, usize)>> =
                original.chunks(chunk).map(|c| c.to_vec()).collect();
            for r in &mut runs {
                r.sort_by_key(|&(k, _)| k);
            }
            runs
        };
        let want = merge_runs(mk(3));
        for ways in [1usize, 2, 3, 4, 8, 32] {
            let (groups, stats) = split_runs_stats(mk(3), ways);
            assert_eq!(
                stats.group_rows.iter().sum::<usize>(),
                want.len(),
                "stats must account for every row (ways {ways})"
            );
            let mut got = Vec::new();
            let mut last_hi: Option<i32> = None;
            for g in groups {
                let m = merge_runs(g);
                if let (Some(hi), Some(&(lo, _))) = (last_hi, m.first()) {
                    // Non-decreasing: a carved hot key may straddle a seam.
                    assert!(lo >= hi, "groups must cover non-decreasing key ranges");
                }
                last_hi = m.last().map(|&(k, _)| k).or(last_hi);
                got.extend(m);
            }
            assert_eq!(got, want, "ways {ways}");
        }
    }

    #[test]
    fn degenerate_all_equal_keys_fan_out_across_ways() {
        // All rows share one key. The seed serialized this case (one
        // non-trivial group = one merge worker); post heavy-hitter carving
        // the key must fan out across `ways` run-sub-range chunks whose
        // concatenation is byte-identical to merging the original runs.
        let runs = vec![vec![(7, 0), (7, 1)], vec![(7, 2)], vec![(7, 3), (7, 4)]];
        let want = merge_runs(runs.clone());
        let ways = 4;
        let (groups, stats) = split_runs_stats(runs, ways);
        assert_eq!(stats.hot_keys, vec![7], "the lone key must be detected hot");
        assert_eq!(groups.len(), ways, "hot key must fan out across `ways` groups");
        assert!(groups.iter().all(|g| g.iter().map(Vec::len).sum::<usize>() > 0));
        let got: Vec<(i32, i32)> = groups.into_iter().flat_map(merge_runs).collect();
        assert_eq!(got, want, "carved output must be byte-identical");
    }

    #[test]
    fn weighted_sampling_balances_one_long_run_against_many_short() {
        // One long uniform run plus many 4-row runs clustered in a narrow
        // key band. Per-run equal sampling (the seed: up to `ways * 8`
        // samples from every run regardless of length) let the short runs
        // dominate the sample, drove most boundaries into their narrow
        // band, and left one group with nearly all of the long run.
        // Length-weighted sampling must keep every way within 2x of ideal.
        let long: Vec<(i32, usize)> = (0..8192).map(|i| (i as i32, i)).collect();
        let mut runs = vec![long];
        for s in 0..64usize {
            let key = (s % 8) as i32;
            runs.push((0..4).map(|j| (key, 10_000 + s * 4 + j)).collect());
        }
        let total: usize = runs.iter().map(Vec::len).sum();
        let ways = 8;
        let ideal = total / ways;
        let want = merge_runs(runs.clone());
        let (groups, stats) = split_runs_stats(runs, ways);
        for (g, &rows) in groups.iter().zip(&stats.group_rows) {
            assert_eq!(g.iter().map(Vec::len).sum::<usize>(), rows);
            assert!(
                rows <= 2 * ideal,
                "way holds {rows} rows, over 2x the ideal {ideal}"
            );
        }
        assert!(
            stats.group_rows.len() >= ways / 2,
            "expected a real fan-out, got {} groups",
            stats.group_rows.len()
        );
        let got: Vec<(i32, usize)> = groups.into_iter().flat_map(merge_runs).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn hot_key_is_carved_into_balanced_run_subranges() {
        // Four runs, each: 50 rows of hot key 5, then 50 distinct tail keys.
        // Key 5 holds 50% of the mass — far over the 1/ways sample share —
        // so it must be detected, isolated, and carved into ~50%/25% = 2
        // chunks, while the output stays byte-identical.
        let runs: Vec<Vec<(i32, usize)>> = (0..4usize)
            .map(|r| {
                let mut run: Vec<(i32, usize)> =
                    (0..50).map(|j| (5, r * 100 + j)).collect();
                run.extend((0..50).map(|j| (10 + j as i32, r * 100 + 50 + j)));
                run
            })
            .collect();
        let total: usize = runs.iter().map(Vec::len).sum();
        let ways = 4;
        let want = merge_runs(runs.clone());
        let (groups, stats) = split_runs_stats(runs, ways);
        assert_eq!(stats.hot_keys, vec![5]);
        let hot_groups = groups
            .iter()
            .filter(|g| g.iter().any(|run| run.iter().any(|&(k, _)| k == 5)))
            .count();
        assert!(hot_groups >= 2, "hot key must span at least two groups");
        let ideal = total / ways;
        assert!(stats.group_rows.iter().all(|&r| r <= 2 * ideal));
        let got: Vec<(i32, usize)> = groups.into_iter().flat_map(merge_runs).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn split_stats_degenerate_ways() {
        let runs = vec![vec![(1, 0usize), (2, 1)], vec![(1, 2)]];
        for ways in [0usize, 1] {
            let (groups, stats) = split_runs_stats(runs.clone(), ways);
            assert_eq!(groups.len(), 1);
            assert!(stats.hot_keys.is_empty());
            assert_eq!(stats.group_rows, vec![3]);
        }
        let (groups, stats) = split_runs_stats(Vec::<Vec<(i32, u8)>>::new(), 4);
        assert_eq!(groups.len(), 1);
        assert_eq!(stats.group_rows, vec![0]);
    }

    #[test]
    fn csr_build_and_lookup() {
        let rows = vec![(-4, 'a'), (-4, 'b'), (0, 'c'), (3, 'd'), (3, 'e'), (3, 'f'), (9, 'g')];
        let idx = CsrIndex::from_sorted(&rows);
        assert_eq!(idx.n_keys(), 4);
        assert_eq!(idx.keys(), &[-4, 0, 3, 9]);
        assert_eq!(idx.lookup(-4), &[0, 1]);
        assert_eq!(idx.lookup(0), &[2]);
        assert_eq!(idx.lookup(3), &[3, 4, 5]);
        assert_eq!(idx.lookup(9), &[6]);
        assert!(idx.lookup(1).is_empty());
        assert!(idx.lookup(-100).is_empty());
        assert!(idx.lookup(100).is_empty());
    }

    #[test]
    fn csr_empty() {
        let idx = CsrIndex::from_sorted::<u8>(&[]);
        assert_eq!(idx.n_keys(), 0);
        assert!(idx.lookup(0).is_empty());
        let mut cur = 0;
        assert!(idx.seek(0, &mut cur).is_empty());
    }

    #[test]
    fn csr_seek_matches_lookup_on_any_probe_order() {
        let rows = vec![(1, ()), (1, ()), (2, ()), (5, ()), (5, ()), (8, ())];
        let idx = CsrIndex::from_sorted(&rows);
        // Ascending, repeated, and regressing probes all agree with lookup.
        let probes = [0, 1, 1, 2, 3, 5, 8, 9, 5, 1, 8, -2, 2];
        let mut cur = 0usize;
        for &p in &probes {
            assert_eq!(idx.seek(p, &mut cur), idx.lookup(p), "probe {p}");
        }
    }
}
