//! Sorted-run utilities for parallel join materialization.
//!
//! A fragment's workers emit **locally sorted runs** (each worker sorts its
//! output batch before flushing it into the shared sink), so the master
//! never has to re-sort the whole fragment output: it performs a **stable
//! k-way merge** of the runs — O(n log k) instead of O(n log n), and the
//! merge itself can be farmed out to the worker pool by first splitting the
//! runs at key boundaries ([`split_runs`]) into disjoint, independently
//! mergeable key sub-ranges.
//!
//! On top of the merged (key-sorted) rows sits a [`CsrIndex`]: sorted unique
//! keys, a CSR-style offsets array, and a positions array, built by one
//! counting pass. A probe is a binary search (or a cursor-advancing seek for
//! merge joins) plus a slice borrow — **zero heap allocation per probe**,
//! unlike the `HashMap<key, Vec<pos>>` it replaces.
//!
//! Everything here is generic over the row payload: a row is `(i32, T)`
//! where the `i32` is the join key.

/// Is `run` sorted by key (ascending, duplicates allowed)?
pub fn is_sorted_run<T>(run: &[(i32, T)]) -> bool {
    run.windows(2).all(|w| w[0].0 <= w[1].0)
}

/// Stable k-way merge of key-sorted runs into one key-sorted vector.
///
/// Ties are broken by run index, then by position within the run. This
/// makes the merge *the* merge step of a stable merge sort: splitting a
/// vector into consecutive chunks, stably sorting each chunk, and merging
/// the chunks with this function reproduces a stable sort of the whole
/// vector element for element. The executor's parity tests lean on exactly
/// that property.
///
/// Implemented as a bottom-up pairwise merge — adjacent runs merge
/// two-at-a-time, level by level, preferring the left (earlier) run on key
/// ties. Same O(n log k) comparison bound as a tournament-heap merge, but
/// the inner loop is a branch-light two-pointer walk over contiguous
/// memory, which in practice beats both a heap (whose per-element
/// sift costs dominate at large k — worker sinks produce one small run per
/// flush batch, so k is in the hundreds) and a full re-sort of the
/// concatenation.
///
/// Rows are moved, never cloned.
pub fn merge_runs<T>(mut runs: Vec<Vec<(i32, T)>>) -> Vec<(i32, T)> {
    debug_assert!(runs.iter().all(|r| is_sorted_run(r)), "merge_runs fed an unsorted run");
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge, left run first among equal keys.
fn merge_two<T>(a: Vec<(i32, T)>, b: Vec<(i32, T)>) -> Vec<(i32, T)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(&(ka, _)), Some(&(kb, _))) => {
                let src = if ka <= kb { &mut ai } else { &mut bi };
                out.push(src.next().expect("peeked row"));
            }
            (Some(_), None) => {
                out.extend(ai);
                return out;
            }
            (None, _) => {
                out.extend(bi);
                return out;
            }
        }
    }
}

/// Split key-sorted runs into at most `ways` groups covering disjoint,
/// ascending key intervals, so each group can be merged independently (and
/// in parallel) and the merged groups concatenated in order.
///
/// Boundaries are chosen from a key sample at the group-size quantiles and
/// applied with binary search (`partition_point`), so a key group — every
/// row bearing one key — always lands wholly in one group and the
/// concatenation of the groups' [`merge_runs`] outputs equals
/// `merge_runs` of the original runs, tie-breaks included (each group keeps
/// every run, possibly empty, in the original run order). Rows are moved
/// via `split_off`, never cloned. Heavily skewed key distributions may
/// yield fewer (even one) non-trivial groups; callers must not assume
/// balance.
pub fn split_runs<T>(runs: Vec<Vec<(i32, T)>>, ways: usize) -> Vec<Vec<Vec<(i32, T)>>> {
    let total: usize = runs.iter().map(Vec::len).sum();
    if ways <= 1 || total == 0 {
        return vec![runs];
    }
    // Sample keys at regular positions of every run; quantiles of the
    // sample approximate quantiles of the merged output well enough for
    // load balancing (exactness is not required for correctness).
    let mut samples: Vec<i32> = Vec::new();
    for r in &runs {
        let take = (ways * 8).min(r.len());
        for j in 0..take {
            samples.push(r[j * r.len() / take].0);
        }
    }
    samples.sort_unstable();
    let mut bounds: Vec<i32> =
        (1..ways).map(|i| samples[i * samples.len() / ways]).collect();
    bounds.dedup();

    // Split from the highest bound down: `split_off` copies only the tail
    // it removes, so taking groups back-to-front moves every row at most
    // once (and the lowest group never moves at all).
    let mut groups_rev: Vec<Vec<Vec<(i32, T)>>> = Vec::with_capacity(bounds.len() + 1);
    let mut rest = runs;
    for &b in bounds.iter().rev() {
        // Rows with key >= b split off into this group; `rest` keeps the
        // head. Equal keys always stay together (strict `<` cut point).
        let group: Vec<Vec<(i32, T)>> = rest
            .iter_mut()
            .map(|run| run.split_off(run.partition_point(|&(k, _)| k < b)))
            .collect();
        groups_rev.push(group);
    }
    groups_rev.push(rest);
    groups_rev.reverse();
    groups_rev
}

/// A CSR-style (compressed sparse row) index over key-sorted rows: sorted
/// unique `keys`, an `offsets` array one longer than `keys`, and a
/// `positions` array of row indices grouped by key — the rows bearing
/// `keys[i]` are `positions[offsets[i]..offsets[i+1]]`.
///
/// Built by a single counting pass over already-sorted rows; probing is a
/// binary search ([`CsrIndex::lookup`]) or a monotone cursor seek
/// ([`CsrIndex::seek`]) returning a borrowed slice — no heap allocation
/// per probe, in contrast to the hash-map-of-vectors it replaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrIndex {
    keys: Vec<i32>,
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl CsrIndex {
    /// Build from key-sorted rows in one counting pass.
    ///
    /// # Panics
    /// Panics (debug) if `rows` is not key-sorted, or if it holds more than
    /// `u32::MAX` rows.
    pub fn from_sorted<T>(rows: &[(i32, T)]) -> Self {
        debug_assert!(is_sorted_run(rows), "CSR build over unsorted rows");
        assert!(rows.len() <= u32::MAX as usize, "CSR index limited to u32 positions");
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut positions = Vec::with_capacity(rows.len());
        for (i, &(k, _)) in rows.iter().enumerate() {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(i as u32); // start of this key's group
            }
            positions.push(i as u32);
        }
        offsets.push(rows.len() as u32); // end sentinel
        CsrIndex { keys, offsets, positions }
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// The sorted unique keys.
    pub fn keys(&self) -> &[i32] {
        &self.keys
    }

    /// Row positions bearing `key` (empty if absent): binary search plus a
    /// slice borrow, zero allocation.
    pub fn lookup(&self, key: i32) -> &[u32] {
        let i = self.keys.partition_point(|&k| k < key);
        self.group(i, key)
    }

    /// Cursor-based lookup for merge joins: `cursor` is an index into the
    /// unique-key array that only moves forward while probe keys ascend
    /// (amortized O(1) per probe over a sorted probe stream). A probe key
    /// *below* the cursor — possible when a worker's key range is
    /// re-partitioned mid-run — falls back to a binary re-seek, so the
    /// result is always exactly [`CsrIndex::lookup`]'s.
    pub fn seek(&self, key: i32, cursor: &mut usize) -> &[u32] {
        let n = self.keys.len();
        let mut i = (*cursor).min(n);
        if i > 0 && self.keys[i - 1] >= key {
            // The cursor overshot this probe (key stream regressed).
            i = self.keys.partition_point(|&k| k < key);
        } else {
            while i < n && self.keys[i] < key {
                i += 1;
            }
        }
        *cursor = i;
        self.group(i, key)
    }

    fn group(&self, i: usize, key: i32) -> &[u32] {
        if i < self.keys.len() && self.keys[i] == key {
            &self.positions[self.offsets[i] as usize..self.offsets[i + 1] as usize]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(keys: &[i32]) -> Vec<(i32, usize)> {
        keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
    }

    #[test]
    fn merge_equals_stable_sort_of_concatenation() {
        let original = keyed(&[5, 1, 5, -3, 2, 2, 5, 0, -3, 7, 1, 1]);
        for chunk in [1usize, 2, 3, 5, 12, 20] {
            let mut runs: Vec<Vec<(i32, usize)>> =
                original.chunks(chunk).map(|c| c.to_vec()).collect();
            for r in &mut runs {
                r.sort_by_key(|&(k, _)| k); // stable
            }
            let merged = merge_runs(runs);
            let mut want = original.clone();
            want.sort_by_key(|&(k, _)| k); // stable
            assert_eq!(merged, want, "chunk size {chunk}");
        }
    }

    #[test]
    fn merge_handles_empty_and_single_runs() {
        assert!(merge_runs::<u8>(vec![]).is_empty());
        assert!(merge_runs::<u8>(vec![vec![], vec![]]).is_empty());
        let one = vec![(1, 9u8), (4, 2)];
        assert_eq!(merge_runs(vec![vec![], one.clone(), vec![]]), one);
    }

    #[test]
    fn split_then_merge_equals_direct_merge() {
        let original = keyed(&[9, 3, 3, 8, 1, 1, 1, 6, 2, 9, 9, 0, 5, 4, 4, 7]);
        let mk = |chunk: usize| -> Vec<Vec<(i32, usize)>> {
            let mut runs: Vec<Vec<(i32, usize)>> =
                original.chunks(chunk).map(|c| c.to_vec()).collect();
            for r in &mut runs {
                r.sort_by_key(|&(k, _)| k);
            }
            runs
        };
        let want = merge_runs(mk(3));
        for ways in [1usize, 2, 3, 4, 8, 32] {
            let groups = split_runs(mk(3), ways);
            assert!(groups.len() <= ways.max(1));
            let mut got = Vec::new();
            let mut last_hi: Option<i32> = None;
            for g in groups {
                let m = merge_runs(g);
                if let (Some(hi), Some(&(lo, _))) = (last_hi, m.first()) {
                    assert!(lo > hi, "groups must cover disjoint ascending key ranges");
                }
                last_hi = m.last().map(|&(k, _)| k).or(last_hi);
                got.extend(m);
            }
            assert_eq!(got, want, "ways {ways}");
        }
    }

    #[test]
    fn split_keeps_key_groups_whole() {
        // All rows share one key: every split must put them in one group.
        let runs = vec![vec![(7, 0), (7, 1)], vec![(7, 2)], vec![(7, 3), (7, 4)]];
        let groups = split_runs(runs, 4);
        let sizes: Vec<usize> =
            groups.iter().map(|g| g.iter().map(Vec::len).sum()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    fn csr_build_and_lookup() {
        let rows = vec![(-4, 'a'), (-4, 'b'), (0, 'c'), (3, 'd'), (3, 'e'), (3, 'f'), (9, 'g')];
        let idx = CsrIndex::from_sorted(&rows);
        assert_eq!(idx.n_keys(), 4);
        assert_eq!(idx.keys(), &[-4, 0, 3, 9]);
        assert_eq!(idx.lookup(-4), &[0, 1]);
        assert_eq!(idx.lookup(0), &[2]);
        assert_eq!(idx.lookup(3), &[3, 4, 5]);
        assert_eq!(idx.lookup(9), &[6]);
        assert!(idx.lookup(1).is_empty());
        assert!(idx.lookup(-100).is_empty());
        assert!(idx.lookup(100).is_empty());
    }

    #[test]
    fn csr_empty() {
        let idx = CsrIndex::from_sorted::<u8>(&[]);
        assert_eq!(idx.n_keys(), 0);
        assert!(idx.lookup(0).is_empty());
        let mut cur = 0;
        assert!(idx.seek(0, &mut cur).is_empty());
    }

    #[test]
    fn csr_seek_matches_lookup_on_any_probe_order() {
        let rows = vec![(1, ()), (1, ()), (2, ()), (5, ()), (5, ()), (8, ())];
        let idx = CsrIndex::from_sorted(&rows);
        // Ascending, repeated, and regressing probes all agree with lookup.
        let probes = [0, 1, 1, 2, 3, 5, 8, 9, 5, 1, 8, -2, 2];
        let mut cur = 0usize;
        for &p in &probes {
            assert_eq!(idx.seek(p, &mut cur), idx.lookup(p), "probe {p}");
        }
    }
}
