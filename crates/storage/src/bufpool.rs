//! A pinning LRU buffer pool.
//!
//! The pool decides which page reads actually cost a disk I/O: a hit costs
//! nothing, a miss charges the disk array. XPRS backends share one pool
//! through shared memory; in the threaded executor this structure sits
//! behind a `parking_lot::Mutex` (the pool's critical sections are short —
//! the I/O itself happens *outside* the latch, per standard practice).

use std::collections::HashMap;

use xprs_disk::RelId;

/// Whether a fetch was served from memory or needs a disk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Page already resident; no I/O.
    Hit,
    /// Page must be read from disk.
    Miss,
}

/// Hit/miss/eviction/bypass counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches that required a disk read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Fetches refused because every frame was pinned ([`PoolExhausted`]).
    /// Callers read around the pool on this outcome, so a bypass is a real
    /// page read that was neither a hit nor a miss — hiding it from the
    /// stats overstated hit rates under pin pressure.
    pub bypasses: u64,
}

impl PoolStats {
    /// Hit fraction of all fetches, counting bypassed fetches in the
    /// denominator: a bypass is a page read the pool failed to serve.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.bypasses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Every fetch the pool saw: `hits + misses + bypasses`. With the pool
    /// in front of every page read this equals the reader's read count — the
    /// accounting invariant `metrics.json` is validated against.
    pub fn fetches(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }
}

#[derive(Debug)]
struct Frame {
    key: (RelId, u64),
    pins: u32,
    last_used: u64,
}

/// Fixed-capacity LRU buffer pool with pin counts.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<(RelId, u64), usize>,
    clock: u64,
    stats: PoolStats,
}

/// Error returned when every frame is pinned and a new page is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted;

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buffer pool exhausted: every frame is pinned")
    }
}

impl std::error::Error for PoolExhausted {}

/// A mismatched unpin: no fetch pinned the page this release claims to
/// balance. Debug builds still assert loudly (an unmatched unpin is a caller
/// bug worth catching in tests); release builds return this typed error so a
/// double-unpin under a spill/retry race degrades to a counted anomaly
/// instead of killing the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnpinError {
    /// The page is not resident in this pool.
    NotResident,
    /// The page is resident but its pin count is already zero.
    NotPinned,
}

impl std::fmt::Display for UnpinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnpinError::NotResident => write!(f, "unpin of non-resident page"),
            UnpinError::NotPinned => write!(f, "unpin of unpinned page"),
        }
    }
}

impl std::error::Error for UnpinError {}

impl BufferPool {
    /// A pool of `capacity` frames (pages).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetch-and-pin `(rel, block)`. `Miss` means the caller must perform the
    /// disk read before using the page; the frame is reserved either way.
    pub fn fetch(&mut self, rel: RelId, block: u64) -> Result<FetchOutcome, PoolExhausted> {
        self.clock += 1;
        if let Some(&i) = self.map.get(&(rel, block)) {
            self.frames[i].pins += 1;
            self.frames[i].last_used = self.clock;
            self.stats.hits += 1;
            return Ok(FetchOutcome::Hit);
        }
        // Need a frame: free slot, else evict the LRU unpinned page.
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame { key: (rel, block), pins: 0, last_used: 0 });
            self.frames.len() - 1
        } else {
            let Some(victim) = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
            else {
                self.stats.bypasses += 1;
                return Err(PoolExhausted);
            };
            self.map.remove(&self.frames[victim].key);
            self.stats.evictions += 1;
            self.frames[victim].key = (rel, block);
            victim
        };
        self.frames[idx].pins = 1;
        self.frames[idx].last_used = self.clock;
        self.map.insert((rel, block), idx);
        self.stats.misses += 1;
        Ok(FetchOutcome::Miss)
    }

    /// Release one pin on `(rel, block)`.
    ///
    /// # Panics
    /// Panics in debug builds if the page is not resident or not pinned — an
    /// unpin without a matching fetch is a caller bug worth failing loudly on
    /// in tests. Release builds return the typed [`UnpinError`] instead so a
    /// double-unpin under spill/retry races cannot take the master down.
    pub fn unpin(&mut self, rel: RelId, block: u64) -> Result<(), UnpinError> {
        let Some(&i) = self.map.get(&(rel, block)) else {
            debug_assert!(false, "unpin of non-resident page ({rel:?}, {block})");
            return Err(UnpinError::NotResident);
        };
        if self.frames[i].pins == 0 {
            debug_assert!(false, "unpin of unpinned page ({rel:?}, {block})");
            return Err(UnpinError::NotPinned);
        }
        self.frames[i].pins -= 1;
        Ok(())
    }

    /// Is the page currently resident?
    pub fn contains(&self, rel: RelId, block: u64) -> bool {
        self.map.contains_key(&(rel, block))
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len().min(self.map.len())
    }

    /// The `(rel, block)` keys of every resident page, in no particular
    /// order. Intended for invariant checks (e.g. shard-residency
    /// uniqueness), not the hot path.
    pub fn resident_keys(&self) -> Vec<(RelId, u64)> {
        self.map.keys().copied().collect()
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of outstanding pin counts across all frames. Zero once every
    /// reader has paired its fetch with an unpin — the pin-leak invariant
    /// the eviction stress tests assert after a run.
    pub fn pinned(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.pins)).sum()
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drop all unpinned pages and zero the statistics.
    pub fn reset(&mut self) {
        assert!(
            self.frames.iter().all(|f| f.pins == 0),
            "reset with pinned pages outstanding"
        );
        self.frames.clear();
        self.map.clear();
        self.stats = PoolStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(1);

    #[test]
    fn first_fetch_misses_second_hits() {
        let mut p = BufferPool::new(4);
        assert_eq!(p.fetch(R, 0), Ok(FetchOutcome::Miss));
        p.unpin(R, 0).unwrap();
        assert_eq!(p.fetch(R, 0), Ok(FetchOutcome::Hit));
        p.unpin(R, 0).unwrap();
        assert_eq!(p.stats(), PoolStats { hits: 1, misses: 1, evictions: 0, bypasses: 0 });
        assert!((p.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(p.stats().fetches(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_unpinned_page() {
        let mut p = BufferPool::new(2);
        p.fetch(R, 0).unwrap();
        p.unpin(R, 0).unwrap();
        p.fetch(R, 1).unwrap();
        p.unpin(R, 1).unwrap();
        // Touch page 0 so page 1 becomes LRU.
        p.fetch(R, 0).unwrap();
        p.unpin(R, 0).unwrap();
        p.fetch(R, 2).unwrap();
        p.unpin(R, 2).unwrap();
        assert!(p.contains(R, 0));
        assert!(!p.contains(R, 1));
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut p = BufferPool::new(2);
        p.fetch(R, 0).unwrap(); // pinned
        p.fetch(R, 1).unwrap(); // pinned
        assert_eq!(p.fetch(R, 2), Err(PoolExhausted));
        p.unpin(R, 1).unwrap();
        assert_eq!(p.fetch(R, 2), Ok(FetchOutcome::Miss));
        assert!(p.contains(R, 0), "pinned page must survive");
        assert_eq!(p.stats().bypasses, 1, "the refused fetch must be counted");
        assert_eq!(p.stats().fetches(), 4, "hits + misses + bypasses covers every fetch");
    }

    #[test]
    fn bypasses_drag_the_hit_rate_down() {
        let mut p = BufferPool::new(1);
        p.fetch(R, 0).unwrap();
        p.unpin(R, 0).unwrap();
        p.fetch(R, 0).unwrap(); // hit, stays pinned
        // Frame pinned: every other page read bypasses the pool.
        for b in 1..=8u64 {
            assert_eq!(p.fetch(R, b), Err(PoolExhausted));
        }
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (1, 1, 8));
        // 1 hit out of 10 fetches, not 1 out of 2.
        assert!((s.hit_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pin_counts_nest() {
        let mut p = BufferPool::new(1);
        p.fetch(R, 0).unwrap();
        p.fetch(R, 0).unwrap(); // second pin
        p.unpin(R, 0).unwrap();
        // Still pinned once: cannot evict.
        assert_eq!(p.fetch(R, 1), Err(PoolExhausted));
        p.unpin(R, 0).unwrap();
        assert_eq!(p.fetch(R, 1), Ok(FetchOutcome::Miss));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unpin of non-resident page")]
    fn unpin_of_absent_page_panics_in_debug() {
        let _ = BufferPool::new(1).unpin(R, 7);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn unpin_of_absent_page_is_a_typed_error_in_release() {
        let mut p = BufferPool::new(1);
        assert_eq!(p.unpin(R, 7), Err(UnpinError::NotResident));
        p.fetch(R, 0).unwrap();
        p.unpin(R, 0).unwrap();
        // Double-unpin: resident but pin count already zero.
        assert_eq!(p.unpin(R, 0), Err(UnpinError::NotPinned));
        // The pool stays usable afterwards.
        assert_eq!(p.fetch(R, 0), Ok(FetchOutcome::Hit));
    }

    #[test]
    fn sequential_scan_larger_than_pool_misses_every_page() {
        // The paper's workloads scan relations far larger than memory; an
        // LRU pool gives zero reuse on a single pass, so the I/O-rate
        // arithmetic can treat every page read as a disk I/O.
        let mut p = BufferPool::new(8);
        for b in 0..100 {
            assert_eq!(p.fetch(R, b), Ok(FetchOutcome::Miss));
            p.unpin(R, b).unwrap();
        }
        assert_eq!(p.stats().misses, 100);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = BufferPool::new(2);
        p.fetch(R, 0).unwrap();
        p.unpin(R, 0).unwrap();
        p.reset();
        assert_eq!(p.stats(), PoolStats::default());
        assert!(!p.contains(R, 0));
    }
}
