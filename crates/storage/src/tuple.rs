//! Tuples and tuple identifiers.

use crate::datum::Datum;
use crate::schema::Schema;

/// A row: one [`Datum`] per schema column.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Datum>,
}

impl Tuple {
    /// Build a tuple; arity and types are validated against `schema`.
    ///
    /// # Panics
    /// Panics on arity or type mismatch.
    pub fn new(schema: &Schema, values: Vec<Datum>) -> Self {
        assert_eq!(values.len(), schema.arity(), "tuple arity mismatch");
        for (i, v) in values.iter().enumerate() {
            let (name, ty) = schema.column(i);
            assert!(ty.admits(v), "value {v} does not fit column {name}");
        }
        Tuple { values }
    }

    /// Build without validation (join outputs whose combined schema is known
    /// correct by construction).
    pub fn from_values(values: Vec<Datum>) -> Self {
        Tuple { values }
    }

    /// Field `i`.
    pub fn get(&self, i: usize) -> &Datum {
        &self.values[i]
    }

    /// All fields.
    pub fn values(&self) -> &[Datum] {
        &self.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenate two tuples (join output).
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// On-page size: per-field payload plus a 4-byte tuple header and a
    /// 2-byte line-pointer share, mirroring a slotted-page layout.
    pub fn stored_size(&self) -> usize {
        4 + 2 + self.values.iter().map(Datum::stored_size).sum::<usize>()
    }
}

/// Physical address of a tuple: `(global block, slot)` — what an unclustered
/// index stores and what Postgres calls a TID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Global (striped) block number within the relation.
    pub block: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.block, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn construction_validates_against_schema() {
        let s = Schema::paper_rel();
        let t = Tuple::new(&s, vec![Datum::Int(1), Datum::Text("x".into())]);
        assert_eq!(t.get(0), &Datum::Int(1));
        assert_eq!(t.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_rejected() {
        Tuple::new(&Schema::paper_rel(), vec![Datum::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn wrong_type_rejected() {
        Tuple::new(&Schema::paper_rel(), vec![Datum::Text("x".into()), Datum::Null]);
    }

    #[test]
    fn stored_size_includes_overheads() {
        let s = Schema::paper_rel();
        // 4 (header) + 2 (line pointer) + 4 (int) + 4+3 (text).
        let t = Tuple::new(&s, vec![Datum::Int(1), Datum::Text("abc".into())]);
        assert_eq!(t.stored_size(), 17);
        // NULL b shrinks the tuple to the minimum — the r_min construction.
        let t = Tuple::new(&s, vec![Datum::Int(1), Datum::Null]);
        assert_eq!(t.stored_size(), 10);
    }

    #[test]
    fn join_concatenates_values() {
        let a = Tuple::from_values(vec![Datum::Int(1)]);
        let b = Tuple::from_values(vec![Datum::Int(2), Datum::Null]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.get(1), &Datum::Int(2));
    }

    #[test]
    fn tuple_id_orders_by_block_then_slot() {
        let a = TupleId { block: 1, slot: 5 };
        let b = TupleId { block: 2, slot: 0 };
        let c = TupleId { block: 1, slot: 6 };
        assert!(a < b && a < c && c < b);
        assert_eq!(a.to_string(), "(1,5)");
    }
}
