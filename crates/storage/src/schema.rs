//! Relation schemas.

use crate::datum::Datum;

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit integer.
    Int4,
    /// Variable-length string.
    Text,
}

impl ColumnType {
    /// Does `d` inhabit this type (NULL inhabits every type)?
    pub fn admits(&self, d: &Datum) -> bool {
        matches!(
            (self, d),
            (ColumnType::Int4, Datum::Int(_))
                | (ColumnType::Text, Datum::Text(_))
                | (_, Datum::Null)
        )
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        let columns: Vec<(String, ColumnType)> =
            columns.into_iter().map(|(n, t)| (n.to_string(), t)).collect();
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                assert_ne!(columns[i].0, columns[j].0, "duplicate column name {}", columns[i].0);
            }
        }
        Schema { columns }
    }

    /// The paper's experiment schema: `r(a int4, b text)`.
    pub fn paper_rel() -> Self {
        Schema::new(vec![("a", ColumnType::Int4), ("b", ColumnType::Text)])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Name and type of column `i`.
    pub fn column(&self, i: usize) -> (&str, ColumnType) {
        let (n, t) = &self.columns[i];
        (n, *t)
    }

    /// All columns in order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.columns.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Concatenate with another schema (join output). Columns keep their
    /// order; duplicate names are allowed in join outputs and resolved by
    /// position downstream.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_shape() {
        let s = Schema::paper_rel();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.column(0), ("a", ColumnType::Int4));
    }

    #[test]
    fn type_admission() {
        assert!(ColumnType::Int4.admits(&Datum::Int(1)));
        assert!(!ColumnType::Int4.admits(&Datum::Text("x".into())));
        assert!(ColumnType::Text.admits(&Datum::Null));
    }

    #[test]
    fn join_concatenates_columns() {
        let s = Schema::paper_rel().join(&Schema::new(vec![("c", ColumnType::Int4)]));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("c"), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![("a", ColumnType::Int4), ("a", ColumnType::Text)]);
    }
}
