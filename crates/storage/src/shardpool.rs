//! A page-hashed sharded buffer pool.
//!
//! The seed executor kept one [`BufferPool`] behind one global mutex, so at
//! 8 workers the pool latch — not the disks — set the scan rate. Here the
//! frames are split into `n_shards` independent shards, each with its own
//! latch, its own LRU clock, and its own hit/miss/eviction counters. A page
//! hashes to exactly one shard, so residency stays unique and per-shard LRU
//! is exact within its slice of the frames; only the *eviction choice* is
//! local rather than global, which for the paper's scan-dominated workloads
//! (no reuse beyond a pass) is indistinguishable from global LRU.
//!
//! `n_shards == 1` degenerates to the seed's single-latch pool — the
//! executor exposes that as the measurable baseline configuration.

use std::sync::{Mutex, MutexGuard, PoisonError};

use xprs_disk::RelId;

use crate::bufpool::{BufferPool, FetchOutcome, PoolExhausted, PoolStats, UnpinError};

/// Fixed-capacity buffer pool split into independently latched shards.
#[derive(Debug)]
pub struct ShardedBufferPool {
    shards: Vec<Mutex<BufferPool>>,
    /// Admission-grant reservation ledger (cold path — latched only by the
    /// master's admission decisions, never by page reads).
    reserve: Mutex<ReserveState>,
}

#[derive(Debug)]
struct ReserveState {
    /// Frames reserved per shard by outstanding grants.
    per_shard: Vec<u64>,
    /// Rotating start shard for remainder distribution, so a stream of
    /// small grants doesn't pile its odd frames onto shard 0.
    cursor: usize,
}

/// A committed shard-capacity reservation: the per-shard frame shares one
/// admission grant holds. Returned by [`ShardedBufferPool::try_reserve`] and
/// handed back verbatim to [`ShardedBufferPool::release`], so release always
/// returns exactly the frames the grant took — the ledger cannot drift.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReservation {
    shares: Vec<u64>,
}

impl ShardReservation {
    /// Total frames this reservation holds.
    pub fn pages(&self) -> u64 {
        self.shares.iter().sum()
    }
}

/// Recover the guard even if a panicking thread poisoned a shard latch: the
/// pool holds bookkeeping only (no torn page images), so the state is usable
/// and the panic is propagating elsewhere regardless.
fn latch<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardedBufferPool {
    /// A pool of `total_pages` frames spread over `n_shards` shards (each
    /// shard gets `ceil(total/n)` frames, so capacity is never rounded to 0).
    ///
    /// # Panics
    /// Panics if `total_pages` or `n_shards` is zero, or if there are fewer
    /// frames than shards.
    pub fn new(total_pages: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            total_pages >= n_shards,
            "pool of {total_pages} frames cannot fill {n_shards} shards"
        );
        let per_shard = total_pages.div_ceil(n_shards);
        ShardedBufferPool {
            shards: (0..n_shards).map(|_| Mutex::new(BufferPool::new(per_shard))).collect(),
            reserve: Mutex::new(ReserveState { per_shard: vec![0; n_shards], cursor: 0 }),
        }
    }

    /// Try to reserve `pages` frames of shard capacity for an admission
    /// grant, spread evenly across the shards (pages hash uniformly, so a
    /// fragment's pin pressure lands on every shard). Fails — committing
    /// nothing — if any shard's outstanding reservations would exceed its
    /// frame count.
    ///
    /// Reservations are *admission accounting*: they bound the aggregate
    /// demand the master admits concurrently, they do not pin frames. The
    /// pin/unpin discipline still governs actual residency, and the bypass
    /// path remains the last-resort safety valve within a grant.
    pub fn try_reserve(&self, pages: u64) -> Option<ShardReservation> {
        let n = self.shards.len();
        let cap = self.shard_capacity() as u64;
        let mut st = latch(&self.reserve);
        let base = pages / n as u64;
        let rem = (pages % n as u64) as usize;
        let mut shares = vec![base; n];
        for i in 0..rem {
            shares[(st.cursor + i) % n] += 1;
        }
        if shares.iter().zip(&st.per_shard).any(|(&s, &r)| r + s > cap) {
            return None;
        }
        for (r, &s) in st.per_shard.iter_mut().zip(&shares) {
            *r += s;
        }
        st.cursor = (st.cursor + rem) % n;
        Some(ShardReservation { shares })
    }

    /// Return a reservation's frames to the shards it took them from.
    ///
    /// # Panics
    /// Panics if `r` did not come from this pool (shard count mismatch or
    /// under-flowing a shard's reserved count) — releasing someone else's
    /// grant is a ledger bug worth failing loudly on.
    pub fn release(&self, r: ShardReservation) {
        if r.shares.is_empty() {
            return;
        }
        let mut st = latch(&self.reserve);
        assert_eq!(r.shares.len(), st.per_shard.len(), "reservation from another pool");
        for (held, &s) in st.per_shard.iter_mut().zip(&r.shares) {
            *held = held.checked_sub(s).expect("reservation released twice");
        }
    }

    /// Frames currently reserved by outstanding grants, summed over shards.
    pub fn reserved(&self) -> u64 {
        latch(&self.reserve).per_shard.iter().sum()
    }

    /// Which shard `(rel, block)` lives on. Deterministic, uniform mix of
    /// both key components so striped scans spread across shards.
    pub fn shard_of(&self, rel: RelId, block: u64) -> usize {
        let h = rel
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let h = (h ^ (h >> 32)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// One-latch page access: on a **hit** the pin is taken and released in
    /// the same critical section (callers copy what they need out of the
    /// resident image) and `Hit` is returned; on a **miss** the frame stays
    /// pinned for the caller's disk read — release it with
    /// [`ShardedBufferPool::finish_read`].
    pub fn access(&self, rel: RelId, block: u64) -> Result<FetchOutcome, PoolExhausted> {
        let mut shard = latch(&self.shards[self.shard_of(rel, block)]);
        let outcome = shard.fetch(rel, block)?;
        if outcome == FetchOutcome::Hit {
            // Cannot fail: the fetch above pinned the page and the shard
            // latch is still held, so no other thread touched the frame.
            shard.unpin(rel, block).expect("hit page pinned in this critical section");
        }
        Ok(outcome)
    }

    /// Release the pin held since a `Miss` from [`ShardedBufferPool::access`].
    /// A no-op if the page is gone (the miss bypassed an exhausted shard);
    /// an unpin that finds the page resident but unpinned — a double release
    /// under a retry race — surfaces as a typed [`UnpinError`] instead of a
    /// panic on release builds.
    pub fn finish_read(&self, rel: RelId, block: u64) -> Result<(), UnpinError> {
        let mut shard = latch(&self.shards[self.shard_of(rel, block)]);
        if shard.contains(rel, block) {
            shard.unpin(rel, block)
        } else {
            Ok(())
        }
    }

    /// Is the page resident (in its one home shard)?
    pub fn contains(&self, rel: RelId, block: u64) -> bool {
        latch(&self.shards[self.shard_of(rel, block)]).contains(rel, block)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Frames per shard.
    pub fn shard_capacity(&self) -> usize {
        latch(&self.shards[0]).capacity()
    }

    /// Total frames across shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity() * self.shards.len()
    }

    /// Counters summed over all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            let st = latch(s).stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.bypasses += st.bypasses;
        }
        total
    }

    /// Per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.shards.iter().map(|s| latch(s).stats()).collect()
    }

    /// Outstanding pins summed over all shards (zero when no read is
    /// between `access` and `finish_read`).
    pub fn pinned(&self) -> u64 {
        self.shards.iter().map(|s| latch(s).pinned()).sum()
    }

    /// Resident page count per shard, indexed by shard.
    pub fn shard_resident(&self) -> Vec<usize> {
        self.shards.iter().map(|s| latch(s).resident()).collect()
    }

    /// Resident page keys per shard, indexed by shard. For invariant checks
    /// (residency uniqueness across shards), not the hot path.
    pub fn shard_resident_keys(&self) -> Vec<Vec<(RelId, u64)>> {
        self.shards.iter().map(|s| latch(s).resident_keys()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(1);

    #[test]
    fn one_shard_behaves_like_the_global_pool() {
        let p = ShardedBufferPool::new(4, 1);
        assert_eq!(p.access(R, 0), Ok(FetchOutcome::Miss));
        p.finish_read(R, 0).unwrap();
        assert_eq!(p.access(R, 0), Ok(FetchOutcome::Hit));
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn pages_route_to_exactly_one_shard() {
        let p = ShardedBufferPool::new(64, 8);
        for b in 0..48u64 {
            p.access(R, b).unwrap();
            p.finish_read(R, b).unwrap();
            let home = p.shard_of(R, b);
            assert!(home < 8);
            // Residency reported only via the home shard.
            assert!(p.contains(R, b) || p.stats().evictions > 0);
        }
    }

    #[test]
    fn stats_sum_over_shards() {
        let p = ShardedBufferPool::new(32, 4);
        for b in 0..16u64 {
            p.access(R, b).unwrap();
            p.finish_read(R, b).unwrap();
        }
        for b in 0..16u64 {
            assert_eq!(p.access(R, b), Ok(FetchOutcome::Hit), "block {b} should be warm");
        }
        let total = p.stats();
        assert_eq!((total.hits, total.misses), (16, 16));
        let by_shard = p.shard_stats();
        assert_eq!(by_shard.iter().map(|s| s.hits).sum::<u64>(), 16);
        assert_eq!(by_shard.iter().map(|s| s.misses).sum::<u64>(), 16);
    }

    #[test]
    fn capacity_is_per_shard_rounded_up() {
        let p = ShardedBufferPool::new(10, 4);
        assert_eq!(p.shard_capacity(), 3);
        assert_eq!(p.capacity(), 12);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_many_shards_rejected() {
        ShardedBufferPool::new(4, 8);
    }

    #[test]
    fn reservations_fill_release_and_balance() {
        let p = ShardedBufferPool::new(32, 4); // 8 frames per shard
        let a = p.try_reserve(10).expect("fits");
        assert_eq!(a.pages(), 10);
        assert_eq!(p.reserved(), 10);
        let b = p.try_reserve(22).expect("exactly fills the pool");
        assert_eq!(p.reserved(), 32);
        assert!(p.try_reserve(1).is_none(), "pool fully reserved");
        p.release(a);
        assert_eq!(p.reserved(), 22);
        assert!(p.try_reserve(10).is_some());
        p.release(b);
    }

    #[test]
    fn small_reservations_rotate_across_shards() {
        // 4 shards x 4 frames: sixteen 1-page grants must all fit — the
        // rotating cursor spreads the odd frames instead of piling them on
        // shard 0.
        let p = ShardedBufferPool::new(16, 4);
        let grants: Vec<_> =
            (0..16).map(|i| p.try_reserve(1).unwrap_or_else(|| panic!("grant {i}"))).collect();
        assert_eq!(p.reserved(), 16);
        assert!(p.try_reserve(1).is_none());
        for g in grants {
            p.release(g);
        }
        assert_eq!(p.reserved(), 0);
    }

    #[test]
    fn zero_page_reservation_is_free() {
        let p = ShardedBufferPool::new(8, 2);
        let g = p.try_reserve(0).expect("empty grant always fits");
        assert_eq!(g.pages(), 0);
        assert_eq!(p.reserved(), 0);
        p.release(g);
    }

    #[test]
    fn exhausted_shard_counts_bypasses() {
        // One shard, one frame: hold the only frame pinned (a miss keeps its
        // pin until finish_read) and every other access is a bypass — and
        // must show up in the stats, or hit rates lie under pin pressure.
        let p = ShardedBufferPool::new(1, 1);
        assert_eq!(p.access(R, 0), Ok(FetchOutcome::Miss)); // pin held
        let mut reads = 1u64;
        for b in 1..=5u64 {
            assert_eq!(p.access(R, b), Err(PoolExhausted));
            reads += 1;
        }
        p.finish_read(R, 0).unwrap();
        assert_eq!(p.access(R, 0), Ok(FetchOutcome::Hit));
        reads += 1;
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (1, 1, 5));
        assert_eq!(s.fetches(), reads, "hits + misses + bypasses == reads");
        assert_eq!(p.shard_stats()[0].bypasses, 5);
    }
}
