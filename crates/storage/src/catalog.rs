//! The system catalog: relations, indexes and optimizer statistics.

use std::collections::BTreeMap;

use xprs_disk::{RelId, StripedLayout};

use crate::btree::BTreeIndex;
use crate::datum::Datum;
use crate::heap::HeapFile;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Statistics the optimizer's selectivity and cost estimation consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelStats {
    /// Cardinality.
    pub n_tuples: u64,
    /// Heap pages.
    pub n_blocks: u64,
    /// Distinct values of the key attribute `a`.
    pub n_distinct_a: u64,
    /// Minimum of `a` (0 if empty).
    pub min_a: i32,
    /// Maximum of `a` (0 if empty).
    pub max_a: i32,
}

/// One catalogued relation: heap, optional index on `a`, cached statistics.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// The heap file.
    pub heap: HeapFile,
    /// Optional B-tree index on column `a`.
    pub index_on_a: Option<BTreeIndex>,
    stats: RelStats,
}

impl Relation {
    /// Cached statistics (recomputed on load and index build).
    pub fn stats(&self) -> RelStats {
        self.stats
    }

    fn recompute_stats(&mut self) {
        let mut distinct = std::collections::HashSet::new();
        let mut min_a = i32::MAX;
        let mut max_a = i32::MIN;
        for (_, t) in self.heap.scan() {
            if let Some(v) = t.get(0).as_int() {
                distinct.insert(v);
                min_a = min_a.min(v);
                max_a = max_a.max(v);
            }
        }
        let n_tuples = self.heap.n_tuples();
        self.stats = RelStats {
            n_tuples,
            n_blocks: self.heap.n_blocks(),
            n_distinct_a: distinct.len() as u64,
            min_a: if n_tuples == 0 { 0 } else { min_a },
            max_a: if n_tuples == 0 { 0 } else { max_a },
        };
    }
}

/// The catalog: name → relation, plus relation-id allocation.
#[derive(Debug, Clone)]
pub struct Catalog {
    layout: StripedLayout,
    rels: BTreeMap<String, Relation>,
    next_id: u64,
}

impl Catalog {
    /// A catalog whose relations stripe over `layout`.
    pub fn new(layout: StripedLayout) -> Self {
        Catalog { layout, rels: BTreeMap::new(), next_id: 1 }
    }

    /// The striping layout shared by every relation.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Create an empty relation. Returns its id.
    ///
    /// # Panics
    /// Panics if the name is taken.
    pub fn create(&mut self, name: &str, schema: Schema) -> RelId {
        assert!(!self.rels.contains_key(name), "relation {name} already exists");
        let rel = RelId(self.next_id);
        self.next_id += 1;
        self.rels.insert(
            name.to_string(),
            Relation {
                name: name.to_string(),
                heap: HeapFile::new(rel, schema, self.layout),
                index_on_a: None,
                stats: RelStats { n_tuples: 0, n_blocks: 0, n_distinct_a: 0, min_a: 0, max_a: 0 },
            },
        );
        rel
    }

    /// Bulk-load rows into `name` and refresh statistics.
    pub fn load(&mut self, name: &str, rows: impl IntoIterator<Item = Tuple>) {
        let rel = self.rels.get_mut(name).unwrap_or_else(|| panic!("no relation {name}"));
        for row in rows {
            let tid = rel.heap.insert(row);
            // Maintain any existing index incrementally.
            if let Some(idx) = &mut rel.index_on_a {
                if let Some(key) = rel.heap.fetch(tid).and_then(|t| t.get(0).as_int()) {
                    idx.insert(key, tid);
                }
            }
        }
        rel.recompute_stats();
    }

    /// Build a B-tree index on column `a` of `name`.
    pub fn build_index(&mut self, name: &str, clustered: bool) {
        let rel = self.rels.get_mut(name).unwrap_or_else(|| panic!("no relation {name}"));
        let mut idx = BTreeIndex::new(clustered);
        for (tid, t) in rel.heap.scan() {
            if let Datum::Int(k) = t.get(0) {
                idx.insert(*k, tid);
            }
        }
        rel.index_on_a = Some(idx);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.rels.get(name)
    }

    /// All relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.rels.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True when no relation exists.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn row(a: i32, blen: usize) -> Tuple {
        Tuple::from_values(vec![Datum::Int(a), Datum::Text("b".repeat(blen))])
    }

    fn catalog_with_rows(n: i32) -> Catalog {
        let mut c = Catalog::new(StripedLayout::new(4));
        c.create("r1", Schema::paper_rel());
        c.load("r1", (0..n).map(|i| row(i % 100, 100)));
        c
    }

    #[test]
    fn create_load_and_stats() {
        let c = catalog_with_rows(1000);
        let r = c.get("r1").unwrap();
        let s = r.stats();
        assert_eq!(s.n_tuples, 1000);
        assert_eq!(s.n_distinct_a, 100);
        assert_eq!(s.min_a, 0);
        assert_eq!(s.max_a, 99);
        assert!(s.n_blocks > 0);
    }

    #[test]
    fn index_build_covers_every_tuple() {
        let mut c = catalog_with_rows(1000);
        c.build_index("r1", false);
        let r = c.get("r1").unwrap();
        let idx = r.index_on_a.as_ref().unwrap();
        assert_eq!(idx.n_entries(), 1000);
        idx.check_invariants();
        // Key 7 appears 10 times (i % 100).
        assert_eq!(idx.lookup(7).len(), 10);
        // Postings point back at real tuples with the right key.
        for &tid in idx.lookup(7) {
            assert_eq!(r.heap.fetch(tid).unwrap().get(0), &Datum::Int(7));
        }
    }

    #[test]
    fn incremental_index_maintenance_on_load() {
        let mut c = catalog_with_rows(10);
        c.build_index("r1", false);
        c.load("r1", vec![row(7, 10)]);
        let r = c.get("r1").unwrap();
        assert_eq!(r.index_on_a.as_ref().unwrap().n_entries(), 11);
        assert_eq!(r.stats().n_tuples, 11);
    }

    #[test]
    fn empty_relation_stats_are_zeroed() {
        let mut c = Catalog::new(StripedLayout::new(4));
        c.create("empty", Schema::paper_rel());
        c.load("empty", Vec::<Tuple>::new());
        let s = c.get("empty").unwrap().stats();
        assert_eq!(s.n_tuples, 0);
        assert_eq!(s.min_a, 0);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_names_rejected() {
        let mut c = Catalog::new(StripedLayout::new(4));
        c.create("r", Schema::paper_rel());
        c.create("r", Schema::paper_rel());
    }

    #[test]
    fn relations_iterate_in_name_order() {
        let mut c = Catalog::new(StripedLayout::new(4));
        c.create("zeta", Schema::paper_rel());
        c.create("alpha", Schema::paper_rel());
        let names: Vec<&str> = c.relations().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(c.len(), 2);
    }
}
