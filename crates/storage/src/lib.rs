//! # xprs-storage
//!
//! The storage substrate underneath the XPRS reproduction: slotted 8 KB heap
//! pages striped round-robin over the disk array, an in-memory B-tree index
//! (clustered or unclustered), a pinning LRU buffer pool, a catalog with
//! optimizer statistics, and — because they are really statements about how
//! a relation's pages and key ranges are divided among parallel backends —
//! the page-partitioning and range-partitioning schemes of the paper's
//! Section 2.4, including the *max-page* and *interval re-partitioning*
//! dynamic-adjustment protocols (Figures 5 and 6).
//!
//! The experiments' schema is `r(a int4, b text)`: attribute `b` is a
//! variable-length string used purely to dial the tuple size, which in turn
//! dials a scan's I/O rate — one 8 KB page holds one huge tuple (`r_max`,
//! 70 I/Os per second) or hundreds of minimal ones (`r_min`, 5 I/Os per
//! second).

pub mod btree;
pub mod bufpool;
pub mod catalog;
pub mod datum;
pub mod heap;
pub mod page;
pub mod partition;
pub mod runs;
pub mod schema;
pub mod shardpool;
pub mod tuple;

pub use btree::BTreeIndex;
pub use bufpool::{BufferPool, PoolStats, UnpinError};
pub use catalog::{Catalog, RelStats, Relation};
pub use datum::Datum;
pub use heap::HeapFile;
pub use page::{Page, PAGE_HEADER, PAGE_SIZE};
pub use partition::{PagePartition, RangePartition};
pub use runs::{merge_runs, split_runs, split_runs_stats, CsrIndex, RunGroup, SplitStats};
pub use schema::{ColumnType, Schema};
pub use shardpool::{ShardReservation, ShardedBufferPool};
pub use tuple::{Tuple, TupleId};
