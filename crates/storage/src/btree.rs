//! A from-scratch B+-tree index over `int4` keys.
//!
//! The experiments create an (optionally unclustered) index on `r.a` to make
//! index scans possible; an unclustered index scan follows each posting to a
//! tuple on some heap page, generating the random I/O pattern that makes
//! such scans IO-bound. The tree stores every `TupleId` for a key (duplicate
//! keys are normal), supports point and range lookups, and keeps the classic
//! invariants: all leaves at the same depth, every node at least half full
//! (except the root), keys ordered within and across nodes.

use crate::tuple::TupleId;

/// Maximum keys per node; splits keep nodes between `MAX_KEYS/2` and
/// `MAX_KEYS`. Small enough to exercise splits in tests, large enough to be
/// realistic for 8 KB pages of `(int4, TID)` entries.
const MAX_KEYS: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<i32>,
        postings: Vec<Vec<TupleId>>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable in `children[i + 1]`.
        keys: Vec<i32>,
        children: Vec<Node>,
    },
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf { keys: Vec::new(), postings: Vec::new() }
    }

    fn smallest_key(&self) -> i32 {
        match self {
            Node::Leaf { keys, .. } => keys[0],
            Node::Internal { children, .. } => children[0].smallest_key(),
        }
    }

    /// Insert; on overflow return `(separator, right sibling)`.
    fn insert(&mut self, key: i32, tid: TupleId) -> Option<(i32, Node)> {
        match self {
            Node::Leaf { keys, postings } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        postings[i].push(tid);
                        None
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        postings.insert(i, vec![tid]);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            let right_keys = keys.split_off(mid);
                            let right_postings = postings.split_off(mid);
                            let sep = right_keys[0];
                            Some((sep, Node::Leaf { keys: right_keys, postings: right_postings }))
                        } else {
                            None
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                if let Some((sep, right)) = children[idx].insert(key, tid) {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        // keys[mid] moves up as the separator.
                        let sep_up = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the promoted separator
                        let right_children = children.split_off(mid + 1);
                        return Some((
                            sep_up,
                            Node::Internal { keys: right_keys, children: right_children },
                        ));
                    }
                }
                None
            }
        }
    }

    fn lookup(&self, key: i32) -> Option<&[TupleId]> {
        match self {
            Node::Leaf { keys, postings } => {
                keys.binary_search(&key).ok().map(|i| postings[i].as_slice())
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                children[idx].lookup(key)
            }
        }
    }

    fn range_into(&self, lo: i32, hi: i32, out: &mut Vec<(i32, TupleId)>) {
        match self {
            Node::Leaf { keys, postings } => {
                let start = keys.partition_point(|k| *k < lo);
                for i in start..keys.len() {
                    if keys[i] > hi {
                        break;
                    }
                    for &tid in &postings[i] {
                        out.push((keys[i], tid));
                    }
                }
            }
            Node::Internal { keys, children } => {
                let start = match keys.binary_search(&lo) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                for idx in start..children.len() {
                    if idx > 0 && keys[idx - 1] > hi {
                        break;
                    }
                    children[idx].range_into(lo, hi, out);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].depth(),
        }
    }

    /// Validate ordering, fill and uniform depth; returns leaf depth.
    fn check(&self, min: Option<i32>, max: Option<i32>, is_root: bool) -> usize {
        match self {
            Node::Leaf { keys, postings } => {
                assert_eq!(keys.len(), postings.len());
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys unordered");
                if let Some(m) = min {
                    assert!(keys.iter().all(|k| *k >= m));
                }
                if let Some(m) = max {
                    assert!(keys.iter().all(|k| *k < m));
                }
                if !is_root {
                    assert!(keys.len() >= MAX_KEYS / 2, "underfull leaf");
                }
                assert!(postings.iter().all(|p| !p.is_empty()));
                1
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "internal keys unordered");
                if !is_root {
                    assert!(keys.len() >= MAX_KEYS / 2, "underfull internal node");
                } else {
                    assert!(!keys.is_empty(), "root internal node must have a key");
                }
                let mut depths = Vec::new();
                for (i, child) in children.iter().enumerate() {
                    let lo = if i == 0 { min } else { Some(keys[i - 1]) };
                    let hi = if i == keys.len() { max } else { Some(keys[i]) };
                    depths.push(child.check(lo, hi, false));
                    if i > 0 {
                        assert_eq!(child.smallest_key(), keys[i - 1], "separator must equal subtree minimum");
                    }
                }
                assert!(depths.windows(2).all(|w| w[0] == w[1]), "leaves at unequal depth");
                depths[0] + 1
            }
        }
    }
}

/// B+-tree index over `int4` keys, mapping each key to all tuples bearing it.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    root: Node,
    n_entries: u64,
    clustered: bool,
}

impl BTreeIndex {
    /// An empty index. `clustered` records whether the heap is stored in key
    /// order (which the optimizer's cost model and the scheduler's I/O-kind
    /// classification both consult).
    pub fn new(clustered: bool) -> Self {
        BTreeIndex { root: Node::empty_leaf(), n_entries: 0, clustered }
    }

    /// Whether the underlying heap is clustered on this key.
    pub fn is_clustered(&self) -> bool {
        self.clustered
    }

    /// Insert `(key, tid)`.
    pub fn insert(&mut self, key: i32, tid: TupleId) {
        if let Some((sep, right)) = self.root.insert(key, tid) {
            let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
            self.root = Node::Internal { keys: vec![sep], children: vec![old_root, right] };
        }
        self.n_entries += 1;
    }

    /// All tuples with exactly `key`.
    pub fn lookup(&self, key: i32) -> &[TupleId] {
        self.root.lookup(key).unwrap_or(&[])
    }

    /// All `(key, tid)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: i32, hi: i32) -> Vec<(i32, TupleId)> {
        let mut out = Vec::new();
        if lo <= hi {
            self.root.range_into(lo, hi, &mut out);
        }
        out
    }

    /// Number of `(key, tid)` entries inserted.
    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.root.depth()
    }

    /// Assert every structural invariant; used by tests and property tests.
    pub fn check_invariants(&self) {
        self.root.check(None, None, true);
    }
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(b: u64, s: u16) -> TupleId {
        TupleId { block: b, slot: s }
    }

    #[test]
    fn empty_index_behaves() {
        let idx = BTreeIndex::new(false);
        assert_eq!(idx.lookup(1), &[]);
        assert!(idx.range(0, 100).is_empty());
        assert_eq!(idx.height(), 1);
        idx.check_invariants();
    }

    #[test]
    fn point_lookups_after_many_inserts() {
        let mut idx = BTreeIndex::new(false);
        for k in 0..10_000 {
            idx.insert(k, tid(k as u64 / 100, (k % 100) as u16));
        }
        idx.check_invariants();
        assert!(idx.height() > 1, "10k keys must split the root");
        for k in [0, 1, 4_999, 9_999] {
            assert_eq!(idx.lookup(k), &[tid(k as u64 / 100, (k % 100) as u16)]);
        }
        assert_eq!(idx.lookup(10_000), &[]);
        assert_eq!(idx.n_entries(), 10_000);
    }

    #[test]
    fn duplicate_keys_accumulate_postings() {
        let mut idx = BTreeIndex::new(false);
        for s in 0..50 {
            idx.insert(7, tid(1, s));
        }
        assert_eq!(idx.lookup(7).len(), 50);
        idx.check_invariants();
    }

    #[test]
    fn range_scan_is_ordered_and_inclusive() {
        let mut idx = BTreeIndex::new(true);
        // Insert in a scrambled order.
        let mut keys: Vec<i32> = (0..1000).collect();
        for i in 0..keys.len() {
            let j = (i * 7919) % keys.len();
            keys.swap(i, j);
        }
        for &k in &keys {
            idx.insert(k, tid(k as u64, 0));
        }
        idx.check_invariants();
        let got = idx.range(100, 199);
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(got[0].0, 100);
        assert_eq!(got[99].0, 199);
        // Empty and inverted ranges.
        assert!(idx.range(2000, 3000).is_empty());
        assert!(idx.range(10, 5).is_empty());
    }

    #[test]
    fn descending_insertion_keeps_invariants() {
        let mut idx = BTreeIndex::new(false);
        for k in (0..5000).rev() {
            idx.insert(k, tid(0, 0));
        }
        idx.check_invariants();
        assert_eq!(idx.range(0, 4999).len(), 5000);
    }

    #[test]
    fn clustered_flag_is_carried() {
        assert!(BTreeIndex::new(true).is_clustered());
        assert!(!BTreeIndex::default().is_clustered());
    }
}
