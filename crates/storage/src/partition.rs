//! Intra-operation partitioning and the Section 2.4 dynamic-adjustment
//! protocols.
//!
//! **Page partitioning** (sequential scans): with parallelism `n`, worker `i`
//! scans pages `{p | p mod n = i}`. The *max-page* protocol (Figure 5)
//! adjusts a running scan from `n` to `n'` workers: the master collects each
//! worker's current page, computes `maxpage = max_i curpage_i`, and
//! broadcasts `(maxpage, n')`. Every page **up to and including** `maxpage`
//! is still owned under the old assignment; pages **after** `maxpage` are
//! owned under the new one. Old workers finish their old-assignment pages
//! below the boundary, then either continue with their new phase or — if
//! their index falls outside `n'` — retire; new workers start directly after
//! the boundary.
//!
//! We represent the history of assignments as a list of *eras*: era `k`
//! covers a half-open page interval with one `(stride, phase per worker)`
//! assignment. Eras tile the page space and phases tile each era, so every
//! page belongs to exactly one worker — the coverage invariant the property
//! tests in `tests/` hammer on.
//!
//! **Range partitioning** (index scans): workers own intervals of key
//! values. The adjustment protocol (Figure 6) collects the *remaining*
//! interval of every worker (`[c, h]` if the worker was scanning `[l, h]`
//! and stands at `c`), re-splits the union into `n'` balanced chunks, and
//! redistributes; a worker may end up with several disjoint intervals.

use std::collections::VecDeque;

/// Result of a dynamic adjustment: what the master must do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjustInfo {
    /// Worker slots created by this adjustment (to be staffed by newly
    /// available slave backends).
    pub new_slots: Vec<usize>,
    /// Worker slots that will retire once they pass the boundary.
    pub retiring_slots: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Page partitioning
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Era {
    /// First page of the era.
    start: u64,
    /// One past the last page (`u64::MAX` for the open era).
    end: u64,
    stride: u64,
    /// `phases[slot]` is the slot's residue class in this era, if assigned.
    phases: Vec<Option<u64>>,
}

#[derive(Debug, Clone, Default)]
struct PageWorkerState {
    /// Next page at or after which this worker looks for work.
    cursor: u64,
    /// Page most recently handed out (the page "currently being scanned").
    current: Option<u64>,
}

/// Page-partitioned scan state with max-page dynamic adjustment.
#[derive(Debug, Clone)]
pub struct PagePartition {
    n_pages: u64,
    eras: Vec<Era>,
    workers: Vec<PageWorkerState>,
}

/// Smallest `q >= from` with `q % stride == phase`.
fn next_congruent(from: u64, stride: u64, phase: u64) -> u64 {
    debug_assert!(phase < stride);
    let rem = from % stride;
    if rem <= phase {
        from + (phase - rem)
    } else {
        from + (stride - rem) + phase
    }
}

impl PagePartition {
    /// Partition `n_pages` pages among `parallelism` workers (slots
    /// `0..parallelism`), worker `i` owning pages `≡ i (mod parallelism)`.
    pub fn new(n_pages: u64, parallelism: u32) -> Self {
        assert!(parallelism >= 1, "need at least one worker");
        let stride = parallelism as u64;
        PagePartition {
            n_pages,
            eras: vec![Era {
                start: 0,
                end: u64::MAX,
                stride,
                phases: (0..stride).map(Some).collect(),
            }],
            workers: vec![PageWorkerState::default(); parallelism as usize],
        }
    }

    /// Total pages being scanned.
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Number of worker slots ever created (including retired ones).
    pub fn n_slots(&self) -> usize {
        self.workers.len()
    }

    /// Current degree of parallelism (assignments in the open era).
    pub fn parallelism(&self) -> u32 {
        self.eras.last().expect("always one era").stride as u32
    }

    /// Slots assigned work in the open era, in phase order.
    pub fn active_slots(&self) -> Vec<usize> {
        let era = self.eras.last().expect("always one era");
        let mut slots: Vec<(u64, usize)> = era
            .phases
            .iter()
            .enumerate()
            .filter_map(|(slot, ph)| ph.map(|p| (p, slot)))
            .collect();
        slots.sort_unstable();
        slots.into_iter().map(|(_, s)| s).collect()
    }

    /// Hand worker `slot` its next page, or `None` when the slot has no
    /// remaining obligation (done or retired).
    pub fn next_page(&mut self, slot: usize) -> Option<u64> {
        let cursor = self.workers[slot].cursor;
        let mut best: Option<u64> = None;
        for era in &self.eras {
            if era.end <= cursor {
                continue;
            }
            let Some(phase) = era.phases.get(slot).copied().flatten() else {
                continue;
            };
            let from = cursor.max(era.start);
            let q = next_congruent(from, era.stride, phase);
            if q < era.end && q < self.n_pages {
                best = Some(best.map_or(q, |b| b.min(q)));
            }
        }
        if let Some(q) = best {
            self.workers[slot].cursor = q + 1;
            self.workers[slot].current = Some(q);
        }
        best
    }

    /// The max-page adjustment protocol: change the scan's parallelism to
    /// `new_parallelism`. Returns the slots to staff and the slots that will
    /// retire. Pages at or below `maxpage` stay with their old owners; pages
    /// above it follow the new assignment.
    pub fn adjust(&mut self, new_parallelism: u32) -> AdjustInfo {
        assert!(new_parallelism >= 1, "need at least one worker");
        let maxpage = self.workers.iter().filter_map(|w| w.current).max();
        // First page governed by the new assignment.
        let last_start = self.eras.last().expect("always one era").start;
        let boundary = maxpage.map_or(0, |m| m + 1).max(last_start);

        let old_active = self.active_slots();
        let stride = new_parallelism as u64;

        // Keep the lowest-phase survivors, retire the rest (the paper keeps
        // backends 0..n'−1 and releases i ≥ n').
        let survivors: Vec<usize> = old_active.iter().copied().take(stride as usize).collect();
        let retiring_slots: Vec<usize> =
            old_active.iter().copied().skip(stride as usize).collect();
        let mut new_slots = Vec::new();
        let mut assigned = survivors;
        while assigned.len() < stride as usize {
            let slot = self.workers.len();
            self.workers.push(PageWorkerState { cursor: boundary, current: None });
            new_slots.push(slot);
            assigned.push(slot);
        }

        let mut phases = vec![None; self.workers.len()];
        for (phase, slot) in assigned.iter().enumerate() {
            phases[*slot] = Some(phase as u64);
        }

        // Close the open era at the boundary (dropping it entirely if it
        // never covered a page) and open the new one.
        {
            let last = self.eras.last_mut().expect("always one era");
            last.end = boundary;
        }
        if self.eras.last().map(|e| e.start == e.end) == Some(true) {
            self.eras.pop();
        }
        self.eras.push(Era { start: boundary, end: u64::MAX, stride, phases });

        AdjustInfo { new_slots, retiring_slots }
    }

    /// Worker-failure recovery: revoke slot `dead`'s unfinished share and
    /// create a replacement slot that inherits it — the dead worker's cursor
    /// and its phase assignment in *every* era. Returns the replacement slot
    /// to staff.
    ///
    /// Workers fail-stop at unit boundaries (a pulled page is always
    /// completed before the next pull), so the cursor cleanly separates the
    /// dead worker's finished pages from its obligation. A falsely-declared
    /// slot that wakes up later finds its phases revoked, draws `None`, and
    /// exits; the one page it may still have in flight was handed out before
    /// revocation and is completed by it — not by the replacement, whose
    /// cursor already sits past it. Either way every page is scanned exactly
    /// once.
    pub fn fail_slot(&mut self, dead: usize) -> usize {
        let slot = self.workers.len();
        // `current` carries over so a later adjust()'s max-page boundary
        // still covers the last page handed to the dead worker.
        self.workers.push(self.workers[dead].clone());
        for era in &mut self.eras {
            let inherited = era.phases.get(dead).copied().flatten();
            if era.phases.len() <= slot {
                era.phases.resize(slot + 1, None);
            }
            era.phases[slot] = inherited;
            era.phases[dead] = None;
        }
        slot
    }
}

// ---------------------------------------------------------------------------
// Range partitioning
// ---------------------------------------------------------------------------

/// An inclusive key interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Smallest key.
    pub lo: i64,
    /// Largest key (inclusive).
    pub hi: i64,
}

impl KeyRange {
    /// Number of keys in the interval.
    pub fn len(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// True if the interval holds no keys (never constructed; for API use).
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

#[derive(Debug, Clone, Default)]
struct RangeWorkerState {
    /// Intervals still to scan, in ascending order; the front interval's
    /// `lo` is the key currently being examined.
    intervals: VecDeque<KeyRange>,
    active: bool,
}

/// Range-partitioned scan state with interval re-partitioning adjustment.
#[derive(Debug, Clone)]
pub struct RangePartition {
    workers: Vec<RangeWorkerState>,
}

impl RangePartition {
    /// Split `[lo, hi]` into `parallelism` balanced contiguous intervals.
    pub fn new(lo: i64, hi: i64, parallelism: u32) -> Self {
        assert!(parallelism >= 1, "need at least one worker");
        assert!(lo <= hi, "empty key range");
        let chunks = split_evenly(&[KeyRange { lo, hi }], parallelism as usize);
        let workers = chunks
            .into_iter()
            .map(|intervals| RangeWorkerState { intervals: intervals.into(), active: true })
            .collect();
        RangePartition { workers }
    }

    /// Total slots ever created.
    pub fn n_slots(&self) -> usize {
        self.workers.len()
    }

    /// Currently active slots.
    pub fn active_slots(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.active)
            .map(|(s, _)| s)
            .collect()
    }

    /// The intervals worker `slot` still owns (front first).
    pub fn remaining(&self, slot: usize) -> Vec<KeyRange> {
        self.workers[slot].intervals.iter().copied().collect()
    }

    /// Hand worker `slot` its next key, or `None` when it has nothing left.
    pub fn next_key(&mut self, slot: usize) -> Option<i64> {
        let w = &mut self.workers[slot];
        let front = w.intervals.front_mut()?;
        let key = front.lo;
        if front.lo == front.hi {
            w.intervals.pop_front();
        } else {
            front.lo += 1;
        }
        Some(key)
    }

    /// The Figure 6 protocol: collect every worker's remaining intervals,
    /// re-split the union into `new_parallelism` balanced chunks and
    /// redistribute. A worker may receive several disjoint intervals.
    pub fn adjust(&mut self, new_parallelism: u32) -> AdjustInfo {
        assert!(new_parallelism >= 1, "need at least one worker");
        // Gather and sort all remaining work.
        let mut remaining: Vec<KeyRange> = Vec::new();
        for w in &mut self.workers {
            remaining.extend(w.intervals.drain(..));
        }
        remaining.sort_by_key(|r| r.lo);

        let old_active = self.active_slots();
        let survivors: Vec<usize> =
            old_active.iter().copied().take(new_parallelism as usize).collect();
        let retiring: Vec<usize> =
            old_active.iter().copied().skip(new_parallelism as usize).collect();
        for &s in &retiring {
            self.workers[s].active = false;
        }
        let mut new_slots = Vec::new();
        let mut assigned = survivors;
        while assigned.len() < new_parallelism as usize {
            let slot = self.workers.len();
            self.workers.push(RangeWorkerState { intervals: VecDeque::new(), active: true });
            new_slots.push(slot);
            assigned.push(slot);
        }

        let chunks = split_evenly(&remaining, assigned.len());
        for (slot, chunk) in assigned.iter().zip(chunks) {
            self.workers[*slot].intervals = chunk.into();
        }

        AdjustInfo { new_slots, retiring_slots: retiring }
    }

    /// Worker-failure recovery: deactivate slot `dead` and hand its
    /// remaining intervals to a fresh replacement slot, which is returned
    /// for staffing. The key the dead worker may have had in flight was
    /// already popped from its intervals, so the replacement never re-scans
    /// it (see [`PagePartition::fail_slot`] for the exactly-once argument).
    pub fn fail_slot(&mut self, dead: usize) -> usize {
        let slot = self.workers.len();
        let intervals = std::mem::take(&mut self.workers[dead].intervals);
        let active = self.workers[dead].active;
        self.workers[dead].active = false;
        self.workers.push(RangeWorkerState { intervals, active });
        slot
    }
}

/// Split a sorted list of disjoint intervals into `n` chunks whose key
/// counts differ by at most one, preserving order.
fn split_evenly(intervals: &[KeyRange], n: usize) -> Vec<Vec<KeyRange>> {
    assert!(n >= 1);
    let total: u64 = intervals.iter().map(KeyRange::len).sum();
    let mut out: Vec<Vec<KeyRange>> = vec![Vec::new(); n];
    let mut iter = intervals.iter().copied();
    let mut cur: Option<KeyRange> = iter.next();
    for (k, chunk) in out.iter_mut().enumerate() {
        // Keys this chunk should take: distribute the remainder first.
        let base = total / n as u64;
        let extra = u64::from((total % n as u64) > k as u64);
        let mut want = base + extra;
        while want > 0 {
            let Some(r) = cur else { break };
            let take = want.min(r.len());
            chunk.push(KeyRange { lo: r.lo, hi: r.lo + take as i64 - 1 });
            if take == r.len() {
                cur = iter.next();
            } else {
                cur = Some(KeyRange { lo: r.lo + take as i64, hi: r.hi });
            }
            want -= take;
        }
    }
    debug_assert!(cur.is_none(), "split_evenly left keys unassigned");
    out
}

// ---------------------------------------------------------------------------
// Morsels
// ---------------------------------------------------------------------------

/// A fixed-size contiguous range of work units — heap pages for a
/// sequential scan, key offsets for an index scan or key-domain walk. The
/// morsel is the grain of the work-stealing execution path: a worker claims
/// a whole morsel, then claims its units one by one on a private atomic,
/// and idle workers steal *whole pending morsels* from victims' deques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First unit (inclusive).
    pub start: u64,
    /// One past the last unit (exclusive).
    pub end: u64,
}

impl Morsel {
    /// Units covered.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Does the morsel cover no units?
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Decompose `[0, total_units)` into fixed-size morsels of `morsel_units`
/// each; the final morsel may be short. `morsel_units` is clamped to ≥ 1.
/// Morsels tile the unit space exactly: disjoint, in order, covering every
/// unit once.
pub fn morselize(total_units: u64, morsel_units: u64) -> Vec<Morsel> {
    let grain = morsel_units.max(1);
    let mut out = Vec::with_capacity(total_units.div_ceil(grain) as usize);
    let mut start = 0;
    while start < total_units {
        let end = (start + grain).min(total_units);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn morselize_tiles_the_unit_space() {
        for total in [0u64, 1, 7, 16, 17, 100] {
            for grain in [0u64, 1, 4, 16, 1000] {
                let morsels = morselize(total, grain);
                let mut next = 0;
                for m in &morsels {
                    assert_eq!(m.start, next, "gap or overlap at {next}");
                    assert!(!m.is_empty(), "empty morsel in {morsels:?}");
                    assert!(m.len() <= grain.max(1));
                    next = m.end;
                }
                assert_eq!(next, total, "units uncovered ({total}, {grain})");
            }
        }
    }

    #[test]
    fn morselize_zero_units_is_empty() {
        assert!(morselize(0, 8).is_empty());
    }

    #[test]
    fn next_congruent_arithmetic() {
        assert_eq!(next_congruent(0, 4, 0), 0);
        assert_eq!(next_congruent(1, 4, 0), 4);
        assert_eq!(next_congruent(5, 4, 3), 7);
        assert_eq!(next_congruent(7, 4, 3), 7);
        assert_eq!(next_congruent(8, 4, 3), 11);
    }

    /// Drain a partition round-robin, recording who scanned what.
    fn drain(p: &mut PagePartition) -> HashMap<u64, usize> {
        let mut seen = HashMap::new();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for slot in 0..p.n_slots() {
                if let Some(page) = p.next_page(slot) {
                    assert!(seen.insert(page, slot).is_none(), "page {page} scanned twice");
                    progressed = true;
                }
            }
        }
        seen
    }

    #[test]
    fn static_page_partition_covers_all_pages() {
        let mut p = PagePartition::new(100, 4);
        let seen = drain(&mut p);
        assert_eq!(seen.len(), 100);
        for (page, slot) in &seen {
            assert_eq!(*slot as u64, page % 4, "worker owns its residue class");
        }
    }

    #[test]
    fn grow_adjustment_adds_workers_after_maxpage() {
        let mut p = PagePartition::new(1000, 2);
        // Let worker 0 scan 0,2,4 and worker 1 scan 1,3 — maxpage = 4.
        for _ in 0..3 {
            p.next_page(0);
        }
        for _ in 0..2 {
            p.next_page(1);
        }
        let info = p.adjust(4);
        assert_eq!(info.new_slots, vec![2, 3]);
        assert!(info.retiring_slots.is_empty());
        assert_eq!(p.parallelism(), 4);
        // New workers only see pages after the boundary (maxpage = 4).
        let first_new = p.next_page(2).unwrap();
        assert!(first_new > 4, "new worker started at page {first_new}");
        // Everything is still covered exactly once: 5 pages pre-scanned plus
        // the probe above plus whatever the drain sees.
        let seen = drain(&mut p);
        assert_eq!(seen.len() + 5 + 1, 1000);
    }

    #[test]
    fn shrink_adjustment_retires_highest_phase_workers() {
        let mut p = PagePartition::new(200, 4);
        for slot in 0..4 {
            p.next_page(slot);
        }
        let info = p.adjust(2);
        assert!(info.new_slots.is_empty());
        assert_eq!(info.retiring_slots, vec![2, 3]);
        // Retiring workers still finish their old pages below the boundary,
        // then get None. (Here they already scanned their one page ≤ maxpage.)
        let seen = drain(&mut p);
        // All pages covered once across the whole run.
        assert_eq!(seen.len() + 4, 200);
        // After draining, retired slots yield nothing.
        assert_eq!(p.next_page(2), None);
    }

    #[test]
    fn adjust_before_any_scanning_replaces_assignment_wholesale() {
        let mut p = PagePartition::new(40, 2);
        let info = p.adjust(4);
        assert_eq!(info.new_slots.len(), 2);
        let seen = drain(&mut p);
        assert_eq!(seen.len(), 40);
        // The fresh assignment owns everything from page 0.
        for (page, slot) in &seen {
            let phase = p.eras.last().unwrap().phases[*slot].unwrap();
            assert_eq!(page % 4, phase);
        }
    }

    #[test]
    fn repeated_adjustments_still_cover_every_page_once() {
        let mut p = PagePartition::new(500, 3);
        let mut seen = HashMap::new();
        let mut step = 0u64;
        let plan = [(60, 5u32), (140, 2), (300, 6), (301, 1)];
        let mut plan_idx = 0;
        loop {
            let mut progressed = false;
            for slot in 0..p.n_slots() {
                if let Some(page) = p.next_page(slot) {
                    assert!(seen.insert(page, slot).is_none(), "page {page} scanned twice");
                    progressed = true;
                    step += 1;
                    if plan_idx < plan.len() && step == plan[plan_idx].0 {
                        p.adjust(plan[plan_idx].1);
                        plan_idx += 1;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(seen.len(), 500, "every page exactly once across adjustments");
        assert_eq!(plan_idx, plan.len(), "all adjustments exercised");
    }

    #[test]
    fn failed_page_slot_hands_its_share_to_the_replacement() {
        let mut p = PagePartition::new(100, 4);
        // Each worker scans two pages, then worker 1 dies.
        for slot in 0..4 {
            p.next_page(slot);
            p.next_page(slot);
        }
        let replacement = p.fail_slot(1);
        assert_eq!(replacement, 4);
        assert_eq!(p.next_page(1), None, "dead slot's share is revoked");
        // The replacement resumes exactly where the dead worker stood.
        assert_eq!(p.next_page(replacement), Some(9));
        assert!(p.active_slots().contains(&replacement));
        assert!(!p.active_slots().contains(&1));
        // Coverage: 8 pre-scanned + 1 probe + the drain = every page once.
        let seen = drain(&mut p);
        assert_eq!(seen.len() + 8 + 1, 100);
    }

    #[test]
    fn failure_composes_with_later_adjustment() {
        let mut p = PagePartition::new(300, 3);
        for slot in 0..3 {
            p.next_page(slot);
        }
        let replacement = p.fail_slot(0);
        p.next_page(replacement);
        let info = p.adjust(5);
        assert_eq!(info.new_slots.len(), 2);
        let seen = drain(&mut p);
        assert_eq!(seen.len() + 3 + 1, 300, "exactly-once across failure + adjustment");
    }

    #[test]
    fn failed_range_slot_hands_its_intervals_to_the_replacement() {
        let mut p = RangePartition::new(0, 99, 2);
        for _ in 0..10 {
            p.next_key(0);
        }
        let replacement = p.fail_slot(0);
        assert_eq!(p.next_key(0), None, "dead slot is empty");
        assert!(!p.active_slots().contains(&0));
        let total: u64 = p.remaining(replacement).iter().map(KeyRange::len).sum();
        assert_eq!(total, 40, "replacement owns the dead worker's remainder");
        let mut seen = std::collections::HashSet::new();
        for slot in 0..p.n_slots() {
            while let Some(k) = p.next_key(slot) {
                assert!(seen.insert(k), "key {k} scanned twice");
            }
        }
        assert_eq!(seen.len(), 90);
        assert!(seen.contains(&10) && !seen.contains(&9));
    }

    #[test]
    fn range_partition_covers_key_space() {
        let mut p = RangePartition::new(0, 99, 4);
        let mut seen = std::collections::HashSet::new();
        for slot in 0..4 {
            while let Some(k) = p.next_key(slot) {
                assert!(seen.insert(k), "key {k} scanned twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn range_chunks_are_balanced() {
        let p = RangePartition::new(0, 102, 4); // 103 keys over 4 workers
        let sizes: Vec<u64> = (0..4)
            .map(|s| p.remaining(s).iter().map(KeyRange::len).sum())
            .collect();
        assert_eq!(sizes.iter().sum::<u64>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn range_adjustment_redistributes_remainder() {
        let mut p = RangePartition::new(0, 99, 2);
        // Worker 0 advances 30 keys into [0,49]; worker 1 stays at 50.
        for _ in 0..30 {
            p.next_key(0);
        }
        let info = p.adjust(4);
        assert_eq!(info.new_slots.len(), 2);
        // 70 keys remain, split 18/18/17/17.
        let sizes: Vec<u64> = (0..4)
            .map(|s| p.remaining(s).iter().map(KeyRange::len).sum())
            .collect();
        assert_eq!(sizes.iter().sum::<u64>(), 70);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Coverage: the remaining keys are exactly 30..100.
        let mut seen = std::collections::HashSet::new();
        for slot in 0..p.n_slots() {
            while let Some(k) = p.next_key(slot) {
                assert!(seen.insert(k));
            }
        }
        assert_eq!(seen.len(), 70);
        assert!(seen.contains(&30) && seen.contains(&99) && !seen.contains(&29));
    }

    #[test]
    fn range_shrink_retires_and_reassigns() {
        let mut p = RangePartition::new(0, 999, 4);
        for slot in 0..4 {
            for _ in 0..100 {
                p.next_key(slot);
            }
        }
        let info = p.adjust(1);
        assert_eq!(info.retiring_slots.len(), 3);
        // Retired slots have nothing left.
        for &s in &info.retiring_slots {
            assert_eq!(p.next_key(s), None);
        }
        // The survivor owns all 600 remaining keys, possibly as several
        // disjoint intervals ("more than one intervals to scan").
        let survivor = p.active_slots()[0];
        let total: u64 = p.remaining(survivor).iter().map(KeyRange::len).sum();
        assert_eq!(total, 600);
        assert!(p.remaining(survivor).len() > 1);
    }

    #[test]
    fn split_evenly_handles_multiple_intervals() {
        let parts = split_evenly(
            &[KeyRange { lo: 0, hi: 9 }, KeyRange { lo: 100, hi: 109 }],
            3,
        );
        let sizes: Vec<u64> = parts.iter().map(|c| c.iter().map(KeyRange::len).sum()).collect();
        assert_eq!(sizes, vec![7, 7, 6]);
    }
}
