//! Field values. The paper's experiments only need `int4` and `text`, which
//! is exactly what Postgres circa 1992 would have put in `r1(a, b)`.

use std::cmp::Ordering;

/// A single field value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datum {
    /// 32-bit signed integer (`int4`).
    Int(i32),
    /// Variable-length string (`text`).
    Text(String),
    /// SQL NULL — used by the experiments to shrink tuples to the minimum.
    Null,
}

impl Datum {
    /// On-page size in bytes: `int4` is 4, `text` is a 4-byte length header
    /// plus the bytes, NULL occupies only its null-bitmap bit (modelled as 0
    /// payload bytes).
    pub fn stored_size(&self) -> usize {
        match self {
            Datum::Int(_) => 4,
            Datum::Text(s) => 4 + s.len(),
            Datum::Null => 0,
        }
    }

    /// The contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained string, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// SQL-style comparison: NULL compares as unknown (`None`), and values
    /// of different types do not compare.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Datum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Text(s) => write!(f, "'{s}'"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_sizes() {
        assert_eq!(Datum::Int(7).stored_size(), 4);
        assert_eq!(Datum::Text("abc".into()).stored_size(), 7);
        assert_eq!(Datum::Null.stored_size(), 0);
    }

    #[test]
    fn sql_comparison_semantics() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Datum::Text("a".into()).sql_cmp(&Datum::Text("a".into())),
            Some(Ordering::Equal)
        );
        // NULLs and type mismatches are unknown.
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Text("1".into())), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(5).as_int(), Some(5));
        assert_eq!(Datum::Text("x".into()).as_text(), Some("x"));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Null.as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Int(-3).to_string(), "-3");
        assert_eq!(Datum::Text("hi".into()).to_string(), "'hi'");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }
}
