//! Heap files: a relation's pages, striped round-robin over the disk array.

use xprs_disk::{RelId, StripedLayout};

use crate::page::Page;
use crate::schema::Schema;
use crate::tuple::{Tuple, TupleId};

/// A relation's heap: pages in global block order. Block `b` lives on disk
/// `b mod D` — the striping is carried by the [`StripedLayout`] so the
/// executor and simulator route I/O identically.
#[derive(Debug, Clone)]
pub struct HeapFile {
    rel: RelId,
    schema: Schema,
    layout: StripedLayout,
    pages: Vec<Page>,
    n_tuples: u64,
}

impl HeapFile {
    /// An empty heap for relation `rel` with `schema`, striped per `layout`.
    pub fn new(rel: RelId, schema: Schema, layout: StripedLayout) -> Self {
        HeapFile { rel, schema, layout, pages: Vec::new(), n_tuples: 0 }
    }

    /// Relation id.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Schema of the stored tuples.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Striping layout.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Number of pages (global blocks).
    pub fn n_blocks(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of stored tuples.
    pub fn n_tuples(&self) -> u64 {
        self.n_tuples
    }

    /// Append a tuple (validated against the schema), extending the heap by
    /// a page when the last page is full. Returns the tuple's address.
    pub fn insert(&mut self, t: Tuple) -> TupleId {
        // Re-validate: `Tuple::new` validates, but tuples can also arrive via
        // `from_values`.
        let t = Tuple::new(&self.schema, t.values().to_vec());
        if self.pages.is_empty() {
            self.pages.push(Page::new());
        }
        let mut block = self.pages.len() - 1;
        let slot = match self.pages[block].insert(t.clone()) {
            Some(s) => s,
            None => {
                self.pages.push(Page::new());
                block += 1;
                self.pages[block].insert(t).expect("tuple must fit in an empty page")
            }
        };
        self.n_tuples += 1;
        TupleId { block: block as u64, slot }
    }

    /// The page at global block `b`.
    pub fn page(&self, b: u64) -> &Page {
        &self.pages[b as usize]
    }

    /// Fetch a tuple by address.
    pub fn fetch(&self, tid: TupleId) -> Option<&Tuple> {
        self.pages.get(tid.block as usize).and_then(|p| p.get(tid.slot))
    }

    /// Iterate every `(TupleId, &Tuple)` in block order — the logical
    /// content a (possibly parallel) sequential scan must produce.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.pages.iter().enumerate().flat_map(|(b, p)| {
            p.iter().map(move |(slot, t)| (TupleId { block: b as u64, slot }, t))
        })
    }

    /// Average tuples per page (what turns tuple size into I/O rate).
    pub fn tuples_per_page(&self) -> f64 {
        if self.pages.is_empty() {
            0.0
        } else {
            self.n_tuples as f64 / self.pages.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn heap() -> HeapFile {
        HeapFile::new(RelId(1), Schema::paper_rel(), StripedLayout::new(4))
    }

    fn row(a: i32, blen: usize) -> Tuple {
        Tuple::from_values(vec![Datum::Int(a), Datum::Text("b".repeat(blen))])
    }

    #[test]
    fn inserts_fill_pages_in_order() {
        let mut h = heap();
        // 800-byte tuples: 10 per page.
        let mut tids = Vec::new();
        for i in 0..25 {
            tids.push(h.insert(row(i, 800 - 14)));
        }
        assert_eq!(h.n_blocks(), 3);
        assert_eq!(h.n_tuples(), 25);
        assert_eq!(tids[0], TupleId { block: 0, slot: 0 });
        assert_eq!(tids[10], TupleId { block: 1, slot: 0 });
        assert_eq!(tids[24], TupleId { block: 2, slot: 4 });
    }

    #[test]
    fn fetch_round_trips() {
        let mut h = heap();
        let tid = h.insert(row(42, 10));
        assert_eq!(h.fetch(tid).unwrap().get(0), &Datum::Int(42));
        assert!(h.fetch(TupleId { block: 9, slot: 0 }).is_none());
    }

    #[test]
    fn scan_yields_all_tuples_in_insertion_order() {
        let mut h = heap();
        for i in 0..100 {
            h.insert(row(i, 500));
        }
        let seen: Vec<i32> = h.scan().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn giant_tuples_take_one_page_each() {
        let mut h = heap();
        for i in 0..5 {
            h.insert(row(i, 8192 - 24 - 14));
        }
        assert_eq!(h.n_blocks(), 5);
        assert!((h.tuples_per_page() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn schema_violations_are_caught_on_insert() {
        heap().insert(Tuple::from_values(vec![Datum::Text("no".into()), Datum::Null]));
    }
}
