//! Section 4 in action: a single four-way join optimized three ways —
//! left-deep with `seqcost` (the [HONG91] baseline), bushy with `seqcost`,
//! and bushy with `parcost` — then executed for real on the threaded engine
//! to confirm all three plans agree on the answer.
//!
//! ```sh
//! cargo run --example bushy_join
//! ```

use xprs::optimizer::PlanShape;
use xprs::storage::{Datum, Schema, Tuple};
use xprs::{Costing, PolicyKind, Query, XprsSystem};
use xprs_workload::Calibration;

fn main() {
    let mut sys = XprsSystem::paper_default();
    let cal = Calibration::paper_default();

    // Two IO-heavy relations (fat tuples) and two CPU-heavy ones (thin).
    for (name, rate, n) in [
        ("orders", 62.0, 1500u64),
        ("lines", 8.0, 30_000),
        ("parts", 58.0, 1200),
        ("notes", 10.0, 24_000),
    ] {
        let blen = cal.blen_for_rate(rate);
        let cat = sys.catalog_mut();
        cat.create(name, Schema::paper_rel());
        cat.load(
            name,
            (0..n).map(|i| Tuple::from_values(vec![Datum::Int(i as i32), Datum::Text("x".repeat(blen))])),
        );
        cat.build_index(name, false);
    }

    let query = Query::join()
        .rel("orders", 1.0)
        .rel("lines", 1.0)
        .rel("parts", 1.0)
        .rel("notes", 1.0)
        .on(0, 1)
        .on(1, 2)
        .on(2, 3)
        .build();

    println!("four-way equi-join over orders ⋈ lines ⋈ parts ⋈ notes\n");
    let mut plans = Vec::new();
    for (label, shape, costing) in [
        ("left-deep + seqcost (HONG91)", PlanShape::LeftDeep, Costing::SeqCost),
        ("bushy + seqcost", PlanShape::Bushy, Costing::SeqCost),
        ("bushy + parcost (this paper)", PlanShape::Bushy, Costing::ParCost),
    ] {
        sys.optimizer_mut().shape = shape;
        let o = sys.optimize(&query, costing).expect("plan");
        println!("{label}:");
        println!("  plan    {}", o.plan.display());
        println!(
            "  seqcost {:6.2} s   parcost {:5.2} s   {} fragments, roots can run in parallel: {}",
            o.seqcost,
            o.parcost,
            o.fragments.fragments.len(),
            o.fragments.dag.roots().len() > 1
        );
        plans.push(o);
    }
    println!(
        "\nestimated response-time win of parcost choice over HONG91: {:.2}×\n",
        plans[0].parcost / plans[2].parcost
    );

    // Execute the baseline and the parcost plan for real; answers must match.
    let bindings = sys.bindings(&query);
    let r_base = sys
        .execute(&[(plans[0].clone(), bindings.clone())], PolicyKind::InterWithAdj, None)
        .expect("exec");
    let r_par = sys
        .execute(&[(plans[2].clone(), bindings)], PolicyKind::InterWithAdj, None)
        .expect("exec");
    let a = &r_base.results[0].rows.rows;
    let b = &r_par.results[0].rows.rows;
    println!(
        "executed both plans on the threaded engine: {} rows each — answers {}",
        a.len(),
        if a.iter().map(|(k, _)| k).eq(b.iter().map(|(k, _)| k)) { "match ✓" } else { "DIFFER ✗" }
    );
}
