//! The multi-user scenario that motivates the paper: ten independent
//! selection queries — some IO-bound, some CPU-bound — submitted together.
//! Compares the three scheduling algorithms on the simulated machine and
//! shows the schedule the adaptive algorithm actually produced.
//!
//! ```sh
//! cargo run --example multiuser_mix [seed]
//! ```

use xprs::{PolicyKind, XprsSystem};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let sys = XprsSystem::paper_default();

    let workload =
        WorkloadGenerator::new().generate(&WorkloadConfig::paper(WorkloadKind::Extreme, seed));
    println!("Extreme workload, seed {seed} — ten single-relation selection tasks:");
    for t in &workload.tasks {
        let class = if t.profile.io_rate > sys.machine().io_threshold() {
            "IO-bound "
        } else {
            "CPU-bound"
        };
        println!(
            "  {}: {class}  C = {:4.1} io/s, T = {:5.1} s sequential  ({} pages of {}-byte-b tuples)",
            t.profile.id, t.profile.io_rate, t.profile.seq_time, t.n_pages, t.blen
        );
    }
    println!();

    let profiles = workload.profiles();
    println!("Turnaround on the discrete-event machine (8 CPUs, 4 disks):");
    let mut baseline = None;
    for policy in PolicyKind::all() {
        let report = sys.simulate(&profiles, policy).expect("sim");
        let vs = match baseline {
            None => {
                baseline = Some(report.elapsed);
                String::new()
            }
            Some(b) => format!("  ({:+.1}% vs INTRA-ONLY)", 100.0 * (report.elapsed / b - 1.0)),
        };
        println!(
            "  {:14} {:6.2} s   cpu util {:4.1}%  disk util {:4.1}%{vs}",
            policy.label(),
            report.elapsed,
            100.0 * report.cpu_utilization(sys.machine().n_procs),
            100.0 * report.disk_utilization(sys.machine().n_disks),
        );
    }

    // Show the fluid-model schedule of the winning policy: which tasks ran
    // together and at what degrees of parallelism.
    println!();
    println!("Schedule produced by INTER-W/-ADJ (fluid replay, first 12 segments):");
    let fluid = sys.estimate(&profiles, PolicyKind::InterWithAdj).expect("fluid");
    for seg in fluid.trace.segments.iter().take(12) {
        let running: Vec<String> = seg
            .running
            .iter()
            .map(|(id, x, _)| format!("{id}×{x:.1}"))
            .collect();
        println!("  [{:6.2} → {:6.2}]  {}", seg.start, seg.end, running.join("  "));
    }
    if fluid.trace.segments.len() > 12 {
        println!("  … {} more segments", fluid.trace.segments.len() - 12);
    }
}
