//! Quickstart: load a relation, run a parallel selection query end-to-end
//! on the threaded executor, and inspect what the machine did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xprs::{Costing, PolicyKind, Query, XprsSystem};
use xprs::storage::{Datum, Schema, Tuple};

fn main() {
    // A system modelled on the paper's machine: 8 processors, 4 disks.
    let mut sys = XprsSystem::paper_default();

    // Create and load r1(a int4, b text): 20 000 rows, 100-byte strings.
    let cat = sys.catalog_mut();
    cat.create("r1", Schema::paper_rel());
    cat.load(
        "r1",
        (0..20_000).map(|i| {
            Tuple::from_values(vec![Datum::Int(i % 500), Datum::Text("payload".repeat(14))])
        }),
    );
    cat.build_index("r1", false);
    let stats = sys.catalog().get("r1").unwrap().stats();
    println!(
        "loaded r1: {} tuples over {} striped pages ({} distinct keys)",
        stats.n_tuples, stats.n_blocks, stats.n_distinct_a
    );

    // A one-variable selection keeping ~30% of the key range — the shape of
    // every task in the paper's Section 3 workloads.
    let query = Query::selection("r1", 0.3);
    let optimized = sys.optimize(&query, Costing::SeqCost).expect("plan");
    println!(
        "plan: {}   (seqcost {:.2} s, parcost {:.2} s, {} fragment)",
        optimized.plan.display(),
        optimized.seqcost,
        optimized.parcost,
        optimized.fragments.fragments.len()
    );
    for f in &optimized.fragments.fragments {
        println!(
            "  fragment {}: T = {:.2} s, C = {:.1} io/s → {}",
            f.profile.id,
            f.profile.seq_time,
            f.profile.io_rate,
            if f.profile.io_rate > sys.machine().io_threshold() { "IO-bound" } else { "CPU-bound" }
        );
    }

    // Execute with the paper's scheduler on real worker threads.
    let bindings = sys.bindings(&query);
    let report = sys.execute(&[(optimized, bindings)], PolicyKind::InterWithAdj, None).expect("exec");
    let rows = &report.results[0].rows;
    println!(
        "executed: {} matching rows in {:.3} s wall; {} page reads \
         ({} sequential / {} almost-sequential / {} random)",
        rows.rows.len(),
        report.wall,
        report.stats.reads,
        report.stats.disk.sequential,
        report.stats.disk.almost_sequential,
        report.stats.disk.random,
    );
}
