//! Watch the Section 2.4 machinery live: a mixed batch of queries runs on
//! the threaded executor, throttled so the scheduling is visible, and the
//! per-fragment timeline shows tasks starting, pairing and finishing under
//! the adaptive scheduler.
//!
//! ```sh
//! cargo run --example adaptive_live
//! ```

use xprs::{Costing, PolicyKind, Query, XprsSystem};
use xprs_workload::{LengthModel, WorkloadConfig, WorkloadGenerator, WorkloadKind};

fn main() {
    let mut sys = XprsSystem::paper_default();

    // A small extreme-mix workload, throttled 400× faster than the real
    // machine so the run takes a fraction of a second but still exercises
    // disk-queue contention and live parallelism adjustment.
    let workload = WorkloadGenerator::new().generate(&WorkloadConfig {
        kind: WorkloadKind::Extreme,
        n_tasks: 6,
        length: LengthModel::SeqTime { min: 1.0, max: 4.0 },
        seed: 7,
    });
    sys.load_workload(&workload);

    let runs: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| {
            let q = Query::selection(&t.relation, 1.0);
            let o = sys.optimize(&q, Costing::SeqCost).expect("plan");
            let b = sys.bindings(&q);
            (o, b)
        })
        .collect();

    println!("six selection queries (3 IO-bound, 3 CPU-bound), 400× throttle\n");
    for policy in [PolicyKind::IntraOnly, PolicyKind::InterWithAdj] {
        let report = sys.execute(&runs, policy, Some(400.0)).expect("exec");
        println!("{}:", policy.label());
        let mut times = report.fragment_times.clone();
        times.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (id, start, finish) in &times {
            let bar_start = (start * 400.0 / 0.2) as usize;
            let bar_len = (((finish - start) * 400.0 / 0.2) as usize).max(1);
            println!(
                "  query {:2}  [{:5.2} → {:5.2}] wall-s  {}{}",
                id.0 >> 32,
                start,
                finish,
                " ".repeat(bar_start.min(60)),
                "█".repeat(bar_len.min(60)),
            );
        }
        println!(
            "  total {:.2} wall-s; {} reads ({} seq / {} almost / {} random)\n",
            report.wall,
            report.stats.reads,
            report.stats.disk.sequential,
            report.stats.disk.almost_sequential,
            report.stats.disk.random,
        );
    }
    println!(
        "INTRA-ONLY runs the queries one after another; INTER-W/-ADJ overlaps an \
         IO-bound scan with a CPU-bound one and re-spreads workers when a query \
         finishes — same answers, shorter wall time."
    );
}
