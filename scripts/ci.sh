#!/usr/bin/env bash
# Full local CI: build, tests, lints, and the executor data-path benchmark.
#
# The workspace builds offline (rand/proptest/criterion are std-only shims
# under shims/), so this needs no network. Run from the repo root:
#
#   ./scripts/ci.sh
#
# The bench steps write BENCH_executor.json, BENCH_join.json, BENCH_obs.json,
# BENCH_service.json and metrics.json at the repo root; the recorded numbers
# live in docs/results/executor_datapath.md, docs/results/join_datapath.md,
# docs/results/observability.md and docs/results/service.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test --release (workspace)"
# Release mode strips debug_asserts; this leg catches control-path failures
# that only debug assertions used to mask (e.g. inverted clamps).
cargo test -q --release --workspace --offline

echo "==> cargo test --doc"
cargo test -q --doc --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> bench_executor (writes BENCH_executor.json)"
./target/release/bench_executor BENCH_executor.json

# Scaling leg: the disk-resident section is the paper's central claim —
# 8 workers must strictly beat 1 on a workload the buffer pool cannot
# absorb, with the utilization audit confirming the disk band is
# saturated rather than under-staffed. Malformed JSON fails the leg too.
echo "==> scaling gate (disk_resident section of BENCH_executor.json)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_executor.json") as f:
        r = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"BENCH_executor.json unreadable or malformed: {e}")
try:
    dr = r["disk_resident"]
    speedup = dr["speedup_8w_over_1w"]
    configs = dr["configs"]
except KeyError as e:
    sys.exit(f"BENCH_executor.json missing disk_resident field: {e}")
modes = {(c["mode"], c["workers"]) for c in configs}
for want in [("stealing", 1), ("stealing", 8), ("static_shares", 8)]:
    if want not in modes:
        sys.exit(f"disk_resident sweep missing config {want}: {sorted(modes)}")
if any(c["pages_per_sec"] <= 0 for c in configs):
    sys.exit("disk_resident config with non-positive throughput")
if speedup <= 1.0:
    sys.exit(f"scaling regression: 8-worker/1-worker speedup {speedup} <= 1.0")
if not dr["saturated_at_8_workers"]:
    sys.exit("8-worker disk-resident run did not saturate the disk band")
print(f"scaling OK: disk-resident 8w/1w = {speedup}x, disk band saturated")
EOF

# Memory leg: concurrent hash joins whose aggregate build demand is 4x the
# pool must complete under memory-grant admission with (a) byte-identical
# results to the uncontended reference run, (b) a balanced grant ledger,
# (c) no page pinned at exit, and (d) the builds actually queueing and
# spilling — i.e. the admission machinery engaged rather than the demand
# quietly fitting.
echo "==> memory gate (memory_admission section of BENCH_executor.json)"
python3 - <<'EOF'
import json, sys
with open("BENCH_executor.json") as f:
    r = json.load(f)
try:
    m = r["memory_admission"]
    configs = {c["mode"]: c for c in m["configs"]}
    grants, ref = configs["grants"], configs["reference"]
except KeyError as e:
    sys.exit(f"BENCH_executor.json missing memory_admission field: {e}")
if m["total_build_pages"] < m["demand_factor"] * m["bufpool_pages"]:
    sys.exit(f"build demand {m['total_build_pages']} pages below the "
             f"{m['demand_factor']}x regime")
if not m["parity"] or grants["rows_digest"] != ref["rows_digest"]:
    sys.exit("memory admission changed a join answer (digest mismatch)")
for side in (grants, ref):
    if side["granted_pages"] != side["released_pages"]:
        sys.exit(f"grant ledger out of balance: {side}")
    if side["pinned_at_exit"] != 0:
        sys.exit(f"{side['pinned_at_exit']} pages pinned at exit: {side}")
if grants["granted_pages"] == 0:
    sys.exit("grants run never granted a page")
if grants["grant_waits"] == 0:
    sys.exit("oversized builds never waited for admission")
if grants["spill_chunks"] == 0 or grants["spill_rows"] == 0:
    sys.exit("oversized builds never spilled")
if ref["granted_pages"] != 0 or ref["spill_chunks"] != 0:
    sys.exit(f"reference run unexpectedly ran under grants: {ref}")
print(f"memory OK: parity, ledger {grants['granted_pages']} granted=released, "
      f"waits={grants['grant_waits']}, spill_rows={grants['spill_rows']}, "
      f"overhead={m['overhead_vs_reference']}x")
EOF

# Predictive leg: the declared-vs-predicted A/B. With declarations seeded
# wrong by 2-8x, the warm predicted mode must beat declared mode on wall
# time, footprint overruns must decrease as the model warms (the measured
# pages feed back into admission demand), ledgers must balance with zero
# pins in both modes, the predictor must actually substitute profiles, and
# the two modes' final-rep schedules must provably differ — a bench where
# prediction changed nothing passes no gate. Malformed JSON fails the leg.
echo "==> predict gate (predictive section of BENCH_executor.json)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_executor.json") as f:
        r = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"BENCH_executor.json unreadable or malformed: {e}")
try:
    p = r["predictive"]
    reps = p["reps"]
    declared = [c for c in reps if c["mode"] == "declared"]
    predicted = [c for c in reps if c["mode"] == "predicted"]
except KeyError as e:
    sys.exit(f"BENCH_executor.json missing predictive field: {e}")
if len(declared) != p["reps_per_mode"] or len(predicted) != p["reps_per_mode"]:
    sys.exit(f"predictive sweep incomplete: {len(declared)} declared, "
             f"{len(predicted)} predicted of {p['reps_per_mode']}")
for c in reps:
    if c["emitted"] <= 0:
        sys.exit(f"vacuous predictive rep: {c}")
    if c["granted_pages"] != c["released_pages"]:
        sys.exit(f"grant ledger out of balance: {c}")
    if c["pinned_at_exit"] != 0:
        sys.exit(f"{c['pinned_at_exit']} pages pinned at exit: {c}")
if {c["emitted"] for c in reps} != {declared[0]["emitted"]}:
    sys.exit("prediction changed a join answer (emitted rows differ)")
if not p["predicted_beats_declared"]:
    sys.exit(f"predicted mode lost to declared: "
             f"{p['predicted_wall_seconds']}s vs {p['declared_wall_seconds']}s")
if predicted[-1]["predictions"] == 0:
    sys.exit("warm predictor never substituted a profile")
first, last = p["overruns_first_rep"], p["overruns_last_rep"]
if not (first > last or last == 0):
    sys.exit(f"footprint overruns did not decrease as the model warmed: "
             f"{first} -> {last}")
if not p["decisions_differ"]:
    sys.exit("declared and predicted modes made identical decisions: "
             "the prediction layer changed nothing")
print(f"predict OK: {p['speedup_predicted_over_declared']}x speedup over "
      f"declared, overruns {first}->{last}, "
      f"{predicted[-1]['predictions']} substitutions, decisions differ")
EOF

echo "==> bench_join (writes BENCH_join.json)"
./target/release/bench_join BENCH_join.json
# The JSON must parse, and the rebuilt materialization path (sorted worker
# runs -> k-way merge -> CSR index) must not be slower than the legacy
# serial-sort/hash-build path at 8 workers.
python3 - <<'EOF'
import json, sys
with open("BENCH_join.json") as f:
    r = json.load(f)
speedup = r["speedup_parallel_merge_vs_hash_build_at_8_workers"]
configs = r["configs"]
assert len(configs) == 8, f"expected 8 configs, got {len(configs)}"
assert all(c["materialized_tuples_per_sec"] > 0 for c in configs)
if speedup < 1.0:
    sys.exit(f"join data-path regression: speedup at 8 workers {speedup} < 1.0")
dr = r["disk_resident"]["speedup_8w_over_1w"]
if dr <= 1.0:
    sys.exit(f"disk-resident join scaling regression: 8w/1w {dr} <= 1.0")
print(f"bench_join OK: speedup at 8 workers = {speedup}x, disk-resident 8w/1w = {dr}x")
EOF

# Skew leg: the Zipf theta-sweep of the key-domain merge join must degrade
# gracefully (theta=1 throughput at least half of theta=0 at 8 workers)
# AND the heavy-hitter machinery must provably engage at theta=1 — hot-key
# counters non-zero, ways actually carved — so the gate cannot pass
# vacuously on a config where detection never ran. Ledgers must balance
# and no page may stay pinned. Malformed JSON fails the leg.
echo "==> skew gate (skew section of BENCH_join.json)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_join.json") as f:
        r = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"BENCH_join.json unreadable or malformed: {e}")
try:
    sk = r["skew"]
    ratio = sk["tput_ratio_theta1_vs_theta0"]
    configs = {c["theta"]: c for c in sk["configs"]}
except KeyError as e:
    sys.exit(f"BENCH_join.json missing skew field: {e}")
for want in (0.0, 0.5, 1.0):
    if want not in configs:
        sys.exit(f"skew sweep missing theta={want}: {sorted(configs)}")
if sk["workers"] != 8 or sk["merge_ways"] < 2:
    sys.exit(f"skew sweep must run 8 workers with a real merge fan-out: {sk}")
for theta, c in configs.items():
    if c["emitted_rows"] <= 0 or c["rows_per_sec"] <= 0:
        sys.exit(f"vacuous skew config at theta={theta}: {c}")
    if c["pinned_at_exit"] != 0:
        sys.exit(f"theta={theta}: {c['pinned_at_exit']} pages pinned at exit")
    if c["granted_pages"] != c["released_pages"]:
        sys.exit(f"theta={theta}: grant ledger out of balance: {c}")
hot = configs[1.0]
if hot["hot_keys"] == 0:
    sys.exit("theta=1.0 detected no heavy hitter: the fan-out never engaged")
if hot["way_rows_max"] == 0 or hot["way_rows_mean"] == 0:
    sys.exit("theta=1.0 merge recorded no way sizes: parallel merge never ran")
if hot["way_rows_max"] >= hot["emitted_rows"]:
    sys.exit(f"theta=1.0: one way swallowed the whole output: {hot}")
if ratio < 0.5:
    sys.exit(f"skew collapse: theta=1 throughput {ratio} < 0.5x theta=0")
print(f"skew OK: theta1/theta0 throughput ratio = {ratio}x, "
      f"{hot['hot_keys']} hot keys at theta=1, "
      f"way balance max/mean = {hot['way_rows_max']}/{hot['way_rows_mean']}")
EOF

echo "==> bench_obs (writes BENCH_obs.json + metrics.json)"
./target/release/bench_obs BENCH_obs.json metrics.json
# The metrics dump must be well-formed and internally consistent (pool
# ledger balances against the read count, every disk reports busy time per
# service class, the paired-window bandwidth falls in the seek-corrected
# band), and enabling metrics must not cost more than ~2% throughput.
python3 - <<'EOF'
import json, sys
with open("metrics.json") as f:
    m = json.load(f)
p = m["pool"]
if p["hits"] + p["misses"] + p["bypasses"] != m["reads"]:
    sys.exit(f"pool ledger broken: {p} vs reads={m['reads']}")
shard_sum = sum(s["hits"] + s["misses"] + s["bypasses"] for s in p["shards"])
if shard_sum != m["reads"]:
    sys.exit(f"per-shard ledger broken: {shard_sum} vs reads={m['reads']}")
if len(m["disks"]) == 0:
    sys.exit("no disks in metrics dump")
for d in m["disks"]:
    for cls in ("sequential", "almost_sequential", "random"):
        if cls not in d:
            sys.exit(f"disk missing service class {cls}: {d}")
a = m["utilization_audit"]
lo, hi = a["band"]
bw = a["paired_bw"]
if not (lo * 0.9 <= bw <= hi * 1.1):
    sys.exit(f"paired bandwidth {bw} outside band [{lo}, {hi}] (+/-10%)")
with open("BENCH_obs.json") as f:
    r = json.load(f)
ratio = r["overhead_ratio"]
if ratio > 1.02:
    sys.exit(f"metrics-enabled throughput regression: ratio {ratio} > 1.02")
print(f"bench_obs OK: paired_bw={bw:.1f} in [{lo},{hi}], overhead={ratio}")
EOF

echo "==> bench_service (writes BENCH_service.json)"
# Open-loop soak of the continuous query service: a fixed-seed multi-tenant
# arrival schedule replayed against three scenarios (fault-free, one
# injected worker death, one sustained disk slowdown), each in an
# uncontended and an overloaded phase.
./target/release/bench_service BENCH_service.json
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_service.json") as f:
        r = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"BENCH_service.json unreadable or malformed: {e}")
scenarios = {s["scenario"]: s for s in r["scenarios"]}
for want in ("no_fault", "worker_death", "disk_slowdown"):
    if want not in scenarios:
        sys.exit(f"missing scenario {want}: {sorted(scenarios)}")
for name, s in scenarios.items():
    phases = {p["phase"]: p for p in s["phases"]}
    for pname in ("uncontended", "overload"):
        if pname not in phases:
            sys.exit(f"{name}: missing phase {pname}")
        p = phases[pname]
        # No admitted query may leak: both ledgers zero once idle, and
        # every admitted query settled (typed failure included).
        if p["reserved_pages_at_idle"] != 0 or p["pinned_pages_at_idle"] != 0:
            sys.exit(f"{name}/{pname}: leaked grant or pin: {p}")
        for c in p["classes"]:
            settled = c["completed"] + c["deadline_cancelled"] + c["failed"]
            if settled != c["submitted"]:
                sys.exit(f"{name}/{pname}/{c['class']}: "
                         f"{c['submitted']} admitted, {settled} settled")
            if c["failed"] != 0:
                sys.exit(f"{name}/{pname}/{c['class']}: {c['failed']} "
                         "queries failed (faults must degrade, not fail)")
    un, over = phases["uncontended"], phases["overload"]
    # Uncontended load must never shed; overload must shed typed errors
    # with a sane retry hint, never buffer without bound.
    if any(c["shed"] != 0 for c in un["classes"]):
        sys.exit(f"{name}: shed in the uncontended phase: {un['classes']}")
    if sum(c["shed"] for c in over["classes"]) == 0:
        sys.exit(f"{name}: overload phase never shed")
    if over["mean_retry_after_us"] <= 0:
        sys.exit(f"{name}: shed responses carried no retry_after hint")
    # Interactive latency must stay distribution-shaped, not collapse into
    # a hung tail: p99 within a fixed multiple of p50 in both phases. The
    # multiple is generous (an interactive lookup can queue behind a few
    # throttled batch joins); the gate exists to catch a p99 in whole
    # seconds against a p50 in milliseconds — a stuck queue, not noise.
    for p in (un, over):
        inter = next(c for c in p["classes"] if c["class"] == "interactive")
        if inter["completed"] == 0:
            sys.exit(f"{name}/{p['phase']}: no interactive query completed")
        if inter["p99_us"] > 96 * max(inter["p50_us"], 1):
            sys.exit(f"{name}/{p['phase']}: interactive p99 {inter['p99_us']}us "
                     f"over 96x p50 {inter['p50_us']}us")
# The fault scenarios must actually engage their faults.
if scenarios["worker_death"]["deaths_fired"] < 1:
    sys.exit("worker_death scenario: the death never fired")
if scenarios["disk_slowdown"]["slow_requests"] == 0:
    sys.exit("disk_slowdown scenario: the slowdown never engaged")
nf = {p["phase"]: p for p in scenarios["no_fault"]["phases"]}
total_shed = sum(c["shed"] for c in nf["overload"]["classes"])
print(f"service OK: 3 scenarios x 2 phases, zero uncontended shed, "
      f"{total_shed} typed sheds under overload, ledgers balanced, "
      f"faults engaged")
EOF

echo "==> cancel (cancellation suite, fixed seeds, debug + release)"
PROPTEST_SEED=7 cargo test -q -p xprs-executor --offline --test cancel_proptest
PROPTEST_SEED=7 cargo test -q -p xprs-executor --release --offline --test cancel_proptest

echo "==> predict (prediction suite, fixed seed, release)"
# Convergence of 4x-wrong declarations, trace replay with predict records,
# and the purity property (prediction is a bit-exact function of the
# observation stream) under a pinned seed.
PROPTEST_SEED=7 cargo test -q -p xprs-executor --release --offline --test predict_exec

echo "==> chaos (fault-injection suite, fixed seeds, debug + release)"
# The workspace legs above already run the chaos tests under proptest's
# default seeding; this leg pins the seed so a property failure found here
# is reproducible verbatim, and runs the fault suite in both profiles.
PROPTEST_SEED=7 cargo test -q -p xprs-executor --offline \
    --test chaos_exec --test chaos_proptest
PROPTEST_SEED=7 cargo test -q -p xprs-executor --release --offline \
    --test chaos_exec --test chaos_proptest

echo "==> CI OK"
