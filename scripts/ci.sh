#!/usr/bin/env bash
# Full local CI: build, tests, lints, and the executor data-path benchmark.
#
# The workspace builds offline (rand/proptest/criterion are std-only shims
# under shims/), so this needs no network. Run from the repo root:
#
#   ./scripts/ci.sh
#
# The bench step writes BENCH_executor.json at the repo root; the recorded
# numbers live in docs/results/executor_datapath.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test --release (workspace)"
# Release mode strips debug_asserts; this leg catches control-path failures
# that only debug assertions used to mask (e.g. inverted clamps).
cargo test -q --release --workspace --offline

echo "==> cargo test --doc"
cargo test -q --doc --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> bench_executor (writes BENCH_executor.json)"
./target/release/bench_executor BENCH_executor.json

echo "==> chaos (fault-injection suite, fixed seeds, debug + release)"
# The workspace legs above already run the chaos tests under proptest's
# default seeding; this leg pins the seed so a property failure found here
# is reproducible verbatim, and runs the fault suite in both profiles.
PROPTEST_SEED=7 cargo test -q -p xprs-executor --offline \
    --test chaos_exec --test chaos_proptest
PROPTEST_SEED=7 cargo test -q -p xprs-executor --release --offline \
    --test chaos_exec --test chaos_proptest

echo "==> CI OK"
