#!/usr/bin/env bash
# Full local CI: build, tests, lints, and the executor data-path benchmark.
#
# The workspace builds offline (rand/proptest/criterion are std-only shims
# under shims/), so this needs no network. Run from the repo root:
#
#   ./scripts/ci.sh
#
# The bench steps write BENCH_executor.json and BENCH_join.json at the repo
# root; the recorded numbers live in docs/results/executor_datapath.md and
# docs/results/join_datapath.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test --release (workspace)"
# Release mode strips debug_asserts; this leg catches control-path failures
# that only debug assertions used to mask (e.g. inverted clamps).
cargo test -q --release --workspace --offline

echo "==> cargo test --doc"
cargo test -q --doc --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> bench_executor (writes BENCH_executor.json)"
./target/release/bench_executor BENCH_executor.json

echo "==> bench_join (writes BENCH_join.json)"
./target/release/bench_join BENCH_join.json
# The JSON must parse, and the rebuilt materialization path (sorted worker
# runs -> k-way merge -> CSR index) must not be slower than the legacy
# serial-sort/hash-build path at 8 workers.
python3 - <<'EOF'
import json, sys
with open("BENCH_join.json") as f:
    r = json.load(f)
speedup = r["speedup_parallel_merge_vs_hash_build_at_8_workers"]
configs = r["configs"]
assert len(configs) == 8, f"expected 8 configs, got {len(configs)}"
assert all(c["materialized_tuples_per_sec"] > 0 for c in configs)
if speedup < 1.0:
    sys.exit(f"join data-path regression: speedup at 8 workers {speedup} < 1.0")
print(f"bench_join OK: speedup at 8 workers = {speedup}x")
EOF

echo "==> chaos (fault-injection suite, fixed seeds, debug + release)"
# The workspace legs above already run the chaos tests under proptest's
# default seeding; this leg pins the seed so a property failure found here
# is reproducible verbatim, and runs the fault suite in both profiles.
PROPTEST_SEED=7 cargo test -q -p xprs-executor --offline \
    --test chaos_exec --test chaos_proptest
PROPTEST_SEED=7 cargo test -q -p xprs-executor --release --offline \
    --test chaos_exec --test chaos_proptest

echo "==> CI OK"
