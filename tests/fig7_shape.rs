//! Guard rails on the headline reproduction: the qualitative shape of
//! Figure 7 must hold on both measurement engines, averaged over seeds.

use xprs::{PolicyKind, XprsSystem};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

fn mean_elapsed(
    sys: &XprsSystem,
    kind: WorkloadKind,
    policy: PolicyKind,
    des: bool,
) -> f64 {
    let sum: f64 = SEEDS
        .iter()
        .map(|&s| {
            let tasks = WorkloadGenerator::new()
                .generate(&WorkloadConfig::paper(kind, s))
                .profiles();
            if des {
                sys.simulate(&tasks, policy).expect("sim").elapsed
            } else {
                sys.estimate(&tasks, policy).expect("fluid").elapsed
            }
        })
        .sum();
    sum / SEEDS.len() as f64
}

fn shapes(des: bool) {
    let sys = XprsSystem::paper_default();
    let engine = if des { "DES" } else { "fluid" };

    // Uniform workloads: the three algorithms are essentially equal
    // (INTER-W/O-ADJ may pay a modest penalty for naive stacking).
    for kind in [WorkloadKind::AllCpu, WorkloadKind::AllIo] {
        let intra = mean_elapsed(&sys, kind, PolicyKind::IntraOnly, des);
        let adj = mean_elapsed(&sys, kind, PolicyKind::InterWithAdj, des);
        assert!(
            (adj - intra).abs() / intra < 0.02,
            "{engine}/{}: WITH-ADJ must match INTRA-ONLY on a uniform workload ({adj} vs {intra})",
            kind.label()
        );
    }

    // Mixed workloads: WITH-ADJ clearly beats INTRA-ONLY on Extreme and is
    // at least as good on Random.
    let intra_x = mean_elapsed(&sys, WorkloadKind::Extreme, PolicyKind::IntraOnly, des);
    let adj_x = mean_elapsed(&sys, WorkloadKind::Extreme, PolicyKind::InterWithAdj, des);
    assert!(
        adj_x < intra_x * 0.97,
        "{engine}/Extreme: WITH-ADJ must win clearly ({adj_x} vs {intra_x})"
    );
    let intra_r = mean_elapsed(&sys, WorkloadKind::RandomMix, PolicyKind::IntraOnly, des);
    let adj_r = mean_elapsed(&sys, WorkloadKind::RandomMix, PolicyKind::InterWithAdj, des);
    assert!(
        adj_r <= intra_r * 1.01,
        "{engine}/Random: WITH-ADJ must not lose ({adj_r} vs {intra_r})"
    );

    // The paper's negative result: pairing WITHOUT dynamic adjustment is
    // not competitive — it loses to WITH-ADJ everywhere and even to
    // INTRA-ONLY on the random mix.
    for kind in WorkloadKind::all() {
        let noadj = mean_elapsed(&sys, kind, PolicyKind::InterWithoutAdj, des);
        let adj = mean_elapsed(&sys, kind, PolicyKind::InterWithAdj, des);
        assert!(
            adj <= noadj * 1.02,
            "{engine}/{}: WITHOUT-ADJ must not beat WITH-ADJ ({noadj} vs {adj})",
            kind.label()
        );
    }
    let noadj_r = mean_elapsed(&sys, WorkloadKind::RandomMix, PolicyKind::InterWithoutAdj, des);
    assert!(
        noadj_r > intra_r * 1.05,
        "{engine}/Random: WITHOUT-ADJ should lose to INTRA-ONLY ({noadj_r} vs {intra_r})"
    );
}

#[test]
fn figure7_shape_holds_on_the_fluid_engine() {
    shapes(false);
}

#[test]
fn figure7_shape_holds_on_the_des_engine() {
    shapes(true);
}

#[test]
fn des_and_fluid_agree_on_the_winner_per_workload() {
    let sys = XprsSystem::paper_default();
    for kind in [WorkloadKind::Extreme, WorkloadKind::RandomMix] {
        let fluid_best = PolicyKind::all()
            .into_iter()
            .min_by(|a, b| {
                mean_elapsed(&sys, kind, *a, false).total_cmp(&mean_elapsed(&sys, kind, *b, false))
            })
            .unwrap();
        let des_best = PolicyKind::all()
            .into_iter()
            .min_by(|a, b| {
                mean_elapsed(&sys, kind, *a, true).total_cmp(&mean_elapsed(&sys, kind, *b, true))
            })
            .unwrap();
        assert_eq!(
            fluid_best.label(),
            des_best.label(),
            "engines disagree on the best policy for {}",
            kind.label()
        );
    }
}
