//! Model-based property test: the from-scratch B+-tree must agree with
//! `std::collections::BTreeMap` on every operation sequence, and keep its
//! structural invariants throughout.

use std::collections::BTreeMap;

use proptest::prelude::*;
use xprs_storage::{BTreeIndex, TupleId};

#[derive(Debug, Clone)]
enum Op {
    Insert(i32, u64, u16),
    Lookup(i32),
    Range(i32, i32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-200i32..200, 0u64..1000, 0u16..16).prop_map(|(k, b, s)| Op::Insert(k, b, s)),
        (-250i32..250).prop_map(Op::Lookup),
        (-250i32..250, -250i32..250).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_agrees_with_the_std_model(ops in proptest::collection::vec(op(), 1..800)) {
        let mut tree = BTreeIndex::new(false);
        let mut model: BTreeMap<i32, Vec<TupleId>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, b, s) => {
                    let tid = TupleId { block: b, slot: s };
                    tree.insert(k, tid);
                    model.entry(k).or_default().push(tid);
                }
                Op::Lookup(k) => {
                    let got = tree.lookup(k);
                    let want = model.get(&k).map(Vec::as_slice).unwrap_or(&[]);
                    prop_assert_eq!(got, want, "lookup({}) diverged", k);
                }
                Op::Range(lo, hi) => {
                    let got = tree.range(lo, hi);
                    let want: Vec<(i32, TupleId)> = model
                        .range(lo..=hi)
                        .flat_map(|(k, tids)| tids.iter().map(move |t| (*k, *t)))
                        .collect();
                    prop_assert_eq!(got, want, "range({},{}) diverged", lo, hi);
                }
            }
        }
        tree.check_invariants();
        let n: u64 = model.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(tree.n_entries(), n);
    }

    /// Bulk ascending/descending/shuffled loads keep the invariants and the
    /// full-range scan returns everything in order.
    #[test]
    fn bulk_load_orders(keys in proptest::collection::vec(-10_000i32..10_000, 0..3000)) {
        let mut tree = BTreeIndex::new(true);
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, TupleId { block: i as u64, slot: 0 });
        }
        tree.check_invariants();
        let all = tree.range(i32::MIN, i32::MAX);
        prop_assert_eq!(all.len(), keys.len());
        prop_assert!(all.windows(2).all(|w| w[0].0 <= w[1].0), "range scan out of order");
    }
}
