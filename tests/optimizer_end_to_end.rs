//! Cross-crate integration: optimizer choices are consistent, fragment
//! decomposition matches the executor's compilation, and every chosen plan
//! computes the same answer on the threaded engine.

use xprs::optimizer::PlanShape;
use xprs::storage::{Datum, Schema, Tuple};
use xprs::{Costing, PolicyKind, Query, XprsSystem};
use xprs_workload::Calibration;

fn build_system() -> XprsSystem {
    let mut sys = XprsSystem::paper_default();
    let cal = Calibration::paper_default();
    for (name, rate, n) in [
        ("io_a", 60.0, 600u64),
        ("cpu_b", 8.0, 9_000),
        ("io_c", 55.0, 500),
        ("cpu_d", 12.0, 7_000),
    ] {
        let blen = cal.blen_for_rate(rate);
        let cat = sys.catalog_mut();
        cat.create(name, Schema::paper_rel());
        cat.load(
            name,
            (0..n).map(|i| {
                Tuple::from_values(vec![Datum::Int(i as i32), Datum::Text("x".repeat(blen))])
            }),
        );
        cat.build_index(name, false);
    }
    sys
}

fn chain_query() -> Query {
    Query::join()
        .rel("io_a", 1.0)
        .rel("cpu_b", 1.0)
        .rel("io_c", 1.0)
        .rel("cpu_d", 1.0)
        .on(0, 1)
        .on(1, 2)
        .on(2, 3)
        .build()
}

#[test]
fn parcost_ranking_never_regresses_the_estimate() {
    let sys = build_system();
    let q = chain_query();
    let by_seq = sys.optimize(&q, Costing::SeqCost).expect("plan");
    let by_par = sys.optimize(&q, Costing::ParCost).expect("plan");
    assert!(
        by_par.parcost <= by_seq.parcost + 1e-9,
        "parcost ranking produced a slower plan: {} vs {}",
        by_par.parcost,
        by_seq.parcost
    );
    // And parallel execution of a plan never loses to its sequential cost.
    assert!(by_par.parcost <= by_par.seqcost * 1.001);
}

#[test]
fn every_strategy_computes_the_same_answer() {
    let mut sys = build_system();
    let q = chain_query();
    let bindings = sys.bindings(&q);
    let mut reference: Option<Vec<i32>> = None;
    for (shape, costing) in [
        (PlanShape::LeftDeep, Costing::SeqCost),
        (PlanShape::Bushy, Costing::SeqCost),
        (PlanShape::Bushy, Costing::ParCost),
    ] {
        sys.optimizer_mut().shape = shape;
        let o = sys.optimize(&q, costing).expect("plan");
        let report = sys.execute(&[(o, bindings.clone())], PolicyKind::InterWithAdj, None).expect("exec");
        let keys: Vec<i32> = report.results[0].rows.rows.iter().map(|(k, _)| *k).collect();
        match &reference {
            None => reference = Some(keys),
            Some(want) => assert_eq!(&keys, want, "{shape:?}/{costing:?} diverged"),
        }
    }
    // The chain join over distinct keys 0..n keeps exactly min(n_i) rows.
    assert_eq!(reference.unwrap().len(), 500);
}

#[test]
fn fragment_estimates_classify_like_their_relations() {
    let sys = build_system();
    // A single hash join: the build side scans the IO-heavy relation, the
    // probe side the CPU-heavy one; the decomposition should expose one
    // IO-bound and one CPU-bound fragment — the pairing opportunity.
    let q = Query::join().rel("io_a", 1.0).rel("cpu_b", 1.0).on(0, 1).build();
    let o = sys.optimize(&q, Costing::ParCost).expect("plan");
    let thr = sys.machine().io_threshold();
    let classes: Vec<bool> = o
        .fragments
        .fragments
        .iter()
        .map(|f| f.profile.io_rate > thr)
        .collect();
    assert!(
        classes.iter().any(|&io| io) && classes.iter().any(|&io| !io),
        "expected one IO-bound and one CPU-bound fragment, rates: {:?}",
        o.fragments
            .fragments
            .iter()
            .map(|f| f.profile.io_rate)
            .collect::<Vec<_>>()
    );
}

#[test]
fn multi_query_mixed_workload_executes_under_all_policies() {
    let mut sys = build_system();
    sys.optimizer_mut().shape = PlanShape::Bushy;
    let q1 = Query::selection("io_a", 1.0);
    let q2 = Query::selection("cpu_b", 0.6);
    let q3 = Query::join().rel("io_c", 1.0).rel("cpu_d", 1.0).on(0, 1).build();
    let runs: Vec<_> = [&q1, &q2, &q3]
        .iter()
        .map(|q| (sys.optimize(q, Costing::SeqCost).expect("plan"), sys.bindings(q)))
        .collect();
    let mut counts: Option<Vec<usize>> = None;
    for policy in PolicyKind::all() {
        let report = sys.execute(&runs, policy, None).expect("exec");
        let got: Vec<usize> = report.results.iter().map(|r| r.rows.rows.len()).collect();
        match &counts {
            None => counts = Some(got),
            Some(want) => assert_eq!(&got, want, "{} changed the answers", policy.label()),
        }
    }
}
