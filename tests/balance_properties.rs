//! Property tests for the scheduling mathematics: balance points, effective
//! bandwidth, estimates and the fluid `T_n` estimator.

use proptest::prelude::*;
use xprs_scheduler::balance::{balance_point, balance_point_constant_b, effective_bandwidth};
use xprs_scheduler::estimate::{t_inter, t_intra};
use xprs_scheduler::fluid::tn_estimate;
use xprs_scheduler::{IoKind, MachineConfig, TaskId, TaskProfile};

fn machine() -> MachineConfig {
    MachineConfig::paper_default()
}

fn io_task() -> impl Strategy<Value = TaskProfile> {
    (30.1f64..70.0, 0.5f64..50.0)
        .prop_map(|(c, t)| TaskProfile::new(TaskId(0), t, c, IoKind::Sequential))
}

fn cpu_task() -> impl Strategy<Value = TaskProfile> {
    (5.0f64..29.9, 0.5f64..50.0)
        .prop_map(|(c, t)| TaskProfile::new(TaskId(1), t, c, IoKind::Sequential))
}

proptest! {
    /// The constant-B closed form satisfies both balance equations exactly.
    #[test]
    fn constant_b_solves_both_equations(c_io in 30.1f64..70.0, c_cpu in 1.0f64..29.9) {
        let m = machine();
        let (n, b) = (m.n_procs as f64, m.total_bandwidth());
        let bp = balance_point_constant_b(c_io, c_cpu, n, b).expect("one of each class");
        prop_assert!((bp.x_io + bp.x_cpu - n).abs() < 1e-9);
        prop_assert!((c_io * bp.x_io + c_cpu * bp.x_cpu - b).abs() < 1e-6);
        prop_assert!(bp.x_io > 0.0 && bp.x_cpu > 0.0);
    }

    /// The interference-corrected solver saturates both resources: the
    /// processor equation exactly, the I/O equation against the effective
    /// bandwidth at the solution.
    #[test]
    fn corrected_balance_saturates_both_resources(io in io_task(), cpu in cpu_task()) {
        let m = machine();
        let bp = balance_point(&io, &cpu, &m).expect("valid mixed pair");
        let n = m.n_procs as f64;
        prop_assert!((bp.x_io + bp.x_cpu - n).abs() < 1e-6);
        let demand = io.io_rate * bp.x_io + cpu.io_rate * bp.x_cpu;
        prop_assert!((demand - bp.effective_bw).abs() < 1e-4 * demand.max(1.0),
            "demand {demand} vs effective {}", bp.effective_bw);
        // Effective bandwidth bounded by the array's physical envelope.
        prop_assert!(bp.effective_bw <= m.total_bandwidth() + 1e-9);
        prop_assert!(bp.effective_bw >= m.total_random_bandwidth() - 1e-9);
    }

    /// Balance points require one task of each class.
    #[test]
    fn same_class_pairs_have_no_balance_point(
        c1 in 30.1f64..70.0,
        c2 in 30.1f64..70.0,
        t in 1.0f64..20.0,
    ) {
        let m = machine();
        let a = TaskProfile::new(TaskId(0), t, c1, IoKind::Sequential);
        let b = TaskProfile::new(TaskId(1), t, c2, IoKind::Sequential);
        prop_assert!(balance_point(&a, &b, &m).is_none());
    }

    /// Effective bandwidth is symmetric, bounded, and equals the paper's
    /// linear interpolation for two sequential streams.
    #[test]
    fn effective_bandwidth_properties(d1 in 1.0f64..240.0, d2 in 1.0f64..240.0) {
        let m = machine();
        let b12 = effective_bandwidth(&m, &[(d1, IoKind::Sequential), (d2, IoKind::Sequential)]);
        let b21 = effective_bandwidth(&m, &[(d2, IoKind::Sequential), (d1, IoKind::Sequential)]);
        prop_assert!((b12 - b21).abs() < 1e-9);
        let ratio = (d1 / d2).min(d2 / d1);
        let expect = m.total_random_bandwidth()
            + (1.0 - ratio) * (m.total_bandwidth() - m.total_random_bandwidth());
        prop_assert!((b12 - expect).abs() < 1e-9);
        prop_assert!(b12 >= m.total_random_bandwidth() - 1e-9);
        prop_assert!(b12 <= m.total_bandwidth() + 1e-9);
    }

    /// T_inter respects the physical floor: no schedule of the pair can beat
    /// either task's own best-case time.
    #[test]
    fn t_inter_is_bounded_below(io in io_task(), cpu in cpu_task()) {
        let m = machine();
        let bp = balance_point(&io, &cpu, &m).expect("valid mixed pair");
        let est = t_inter(&io, &cpu, &bp, &m);
        prop_assert!(est.elapsed >= t_intra(&io, &m).max(t_intra(&cpu, &m)) - 1e-9);
        prop_assert!(est.survivor_remaining >= 0.0);
        prop_assert!(est.first_finish <= est.elapsed + 1e-12);
    }

    /// T_n(S) lies between the physical lower bounds and serial execution,
    /// and never loses to running every task alone at maxp.
    #[test]
    fn tn_estimate_is_sandwiched(tasks in proptest::collection::vec(
        (5.0f64..70.0, 0.5f64..20.0), 1..8)
    ) {
        let m = machine();
        let tasks: Vec<TaskProfile> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, (c, t))| TaskProfile::new(TaskId(i as u64), t, c, IoKind::Sequential))
            .collect();
        let tn = tn_estimate(&m, &tasks);
        let cpu_bound: f64 = tasks.iter().map(|t| t.seq_time).sum::<f64>() / m.n_procs as f64;
        let io_bound: f64 = tasks.iter().map(|t| t.total_ios()).sum::<f64>() / m.total_bandwidth();
        prop_assert!(tn >= cpu_bound - 1e-6, "beats the CPU floor: {tn} < {cpu_bound}");
        prop_assert!(tn >= io_bound - 1e-6, "beats the IO floor: {tn} < {io_bound}");
        let serial: f64 = tasks.iter().map(|t| t_intra(t, &m)).sum();
        prop_assert!(tn <= serial * (1.0 + 1e-6) + 1e-9, "loses to intra-only: {tn} > {serial}");
    }
}

proptest! {
    /// Sweep degenerate 1- and 2-processor machines: every balance point the
    /// solver produces still satisfies the paper's invariants
    /// (`x_io + x_cpu = N`, effective bandwidth inside `[B_r, B_s]`), the
    /// uniprocessor integral split declines cleanly instead of panicking
    /// (the seed's `clamp(1.0, 0.0)` inversion), and the fluid model runs
    /// every task set to completion under all three policies.
    #[test]
    fn tiny_machine_sweep(
        n_procs in 1u32..=2,
        c_io in 1.0f64..400.0,
        c_cpu in 1.0f64..400.0,
        t in 0.5f64..20.0,
    ) {
        use xprs_scheduler::balance::integral_split;
        use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
        use xprs_scheduler::intra::IntraOnly;
        use xprs_scheduler::fluid::FluidSim;
        use xprs_scheduler::SchedulePolicy;

        let mut m = machine();
        m.n_procs = n_procs;
        let n = n_procs as f64;
        let io = TaskProfile::new(TaskId(0), t, c_io, IoKind::Sequential);
        let cpu = TaskProfile::new(TaskId(1), t, c_cpu, IoKind::Sequential);

        if let Some(bp) = balance_point(&io, &cpu, &m) {
            prop_assert!((bp.x_io + bp.x_cpu - n).abs() < 1e-6,
                "processors not conserved: {} + {} != {n}", bp.x_io, bp.x_cpu);
            prop_assert!(bp.x_io > 0.0 && bp.x_cpu > 0.0);
            prop_assert!(bp.effective_bw >= m.total_random_bandwidth() - 1e-9);
            prop_assert!(bp.effective_bw <= m.total_bandwidth() + 1e-9);
            match integral_split(&bp, &m) {
                None => prop_assert!(n_procs < 2, "split refused on a splittable machine"),
                Some((xi, xc)) => {
                    prop_assert!(xi >= 1 && xc >= 1);
                    prop_assert_eq!(xi + xc, n_procs);
                }
            }
        }

        let tasks = vec![io, cpu];
        let policies: Vec<Box<dyn SchedulePolicy>> = vec![
            Box::new(IntraOnly::new(m.clone(), true)),
            Box::new(AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m.clone()))),
            Box::new(AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m.clone()))),
        ];
        for mut p in policies {
            let r = FluidSim::new(m.clone()).run(p.as_mut(), &tasks);
            let r = r.expect("tiny machine run must complete without a control-path error");
            prop_assert!(r.elapsed.is_finite() && r.elapsed > 0.0);
        }
    }
}
