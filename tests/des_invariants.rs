//! Property tests over the discrete-event simulator: physical conservation
//! laws and cross-policy sanity on randomized workloads.

use proptest::prelude::*;
use xprs::{PolicyKind, XprsSystem};
use xprs_scheduler::{IoKind, TaskId, TaskProfile};

fn task_set() -> impl Strategy<Value = Vec<TaskProfile>> {
    proptest::collection::vec((5.0f64..70.0, 0.5f64..6.0, proptest::bool::ANY), 1..7).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (rate, t, random))| {
                    // Random-kind tasks are capped by the solo random rate.
                    let (rate, kind) = if random && rate < 34.0 {
                        (rate, IoKind::Random)
                    } else {
                        (rate, IoKind::Sequential)
                    };
                    TaskProfile::new(TaskId(i as u64), t, rate, kind)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Busy time can never exceed capacity × elapsed, every task finishes
    /// after it starts, and the elapsed time respects the physical floors.
    #[test]
    fn conservation_laws_hold(tasks in task_set(), policy_idx in 0usize..3) {
        let sys = XprsSystem::paper_default();
        let policy = PolicyKind::all()[policy_idx];
        let report = sys.simulate(&tasks, policy).expect("sim");
        let m = sys.machine();

        prop_assert!(report.elapsed > 0.0);
        prop_assert!(report.cpu_busy <= m.n_procs as f64 * report.elapsed * (1.0 + 1e-9),
            "CPU busy {} exceeds capacity over {}", report.cpu_busy, report.elapsed);
        prop_assert!(report.disk.busy_time <= m.n_disks as f64 * report.elapsed * (1.0 + 1e-9),
            "disk busy {} exceeds capacity over {}", report.disk.busy_time, report.elapsed);

        // Every task has a sane lifetime, and the last finish is the elapsed.
        let mut latest: f64 = 0.0;
        for (id, start, finish) in &report.task_times {
            prop_assert!(finish >= start, "task {id} finished before starting");
            latest = latest.max(*finish);
        }
        prop_assert!((latest - report.elapsed).abs() < 1e-9);

        // The machine served every I/O the tasks were calibrated to issue.
        let total_ios: f64 = tasks.iter().map(|t| t.total_ios().round().max(1.0)).sum();
        prop_assert_eq!(report.disk.total() as f64, total_ios);

        // Physical floor: the disks cannot deliver faster than the best-case
        // aggregate bandwidth.
        prop_assert!(report.elapsed >= total_ios / m.total_seq_bandwidth() - 1e-9);
    }

    /// The paper's algorithm never loses badly to the baseline: WITH-ADJ is
    /// within a whisker of INTRA-ONLY on any workload (it falls back to
    /// intra-only execution whenever pairing is unattractive).
    #[test]
    fn with_adj_never_loses_materially(tasks in task_set()) {
        let sys = XprsSystem::paper_default();
        let intra = sys.simulate(&tasks, PolicyKind::IntraOnly).expect("sim").elapsed;
        let adj = sys.simulate(&tasks, PolicyKind::InterWithAdj).expect("sim").elapsed;
        prop_assert!(
            adj <= intra * 1.08 + 0.1,
            "WITH-ADJ {adj} lost to INTRA-ONLY {intra}"
        );
    }

    /// Determinism: the DES is a pure function of its inputs.
    #[test]
    fn simulation_is_deterministic(tasks in task_set(), policy_idx in 0usize..3) {
        let sys = XprsSystem::paper_default();
        let policy = PolicyKind::all()[policy_idx];
        let a = sys.simulate(&tasks, policy).expect("sim");
        let b = sys.simulate(&tasks, policy).expect("sim");
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.n_events, b.n_events);
        prop_assert_eq!(a.disk.total(), b.disk.total());
    }

    /// The fluid model and the DES agree within a factor-band: the DES pays
    /// real queueing and seek costs, so it may be slower, but never faster
    /// than the idealized arithmetic by more than rounding, and never slower
    /// than 2× on these small mixes.
    #[test]
    fn fluid_and_des_are_banded(tasks in task_set()) {
        let sys = XprsSystem::paper_default();
        let fluid = sys.estimate(&tasks, PolicyKind::InterWithAdj).expect("fluid").elapsed;
        let des = sys.simulate(&tasks, PolicyKind::InterWithAdj).expect("sim").elapsed;
        prop_assert!(des >= fluid * 0.85, "DES {des} implausibly beat the fluid bound {fluid}");
        prop_assert!(des <= fluid * 2.0 + 0.5, "DES {des} wildly exceeds the fluid estimate {fluid}");
    }
}
