//! Property tests for the sharded buffer pool: under arbitrary access
//! sequences, residency is unique across shards, the summed counters
//! reconcile with the per-shard counters and with the access sequence
//! itself, and no shard ever holds or evicts beyond its own capacity.

use std::collections::HashSet;

use proptest::prelude::*;
use xprs_disk::RelId;
use xprs_storage::bufpool::FetchOutcome;
use xprs_storage::ShardedBufferPool;

/// An access sequence over a handful of relations and a modest block space,
/// small enough to force plenty of eviction against the pool sizes below.
fn accesses() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1u64..5, 0u64..160), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sharded_pool_invariants_hold_under_arbitrary_access(
        total_pages in 8usize..96,
        n_shards in 1usize..9,
        seq in accesses(),
    ) {
        let n_shards = n_shards.min(total_pages);
        let pool = ShardedBufferPool::new(total_pages, n_shards);

        let mut accessed: HashSet<(u64, u64)> = HashSet::new();
        for &(rel, block) in &seq {
            // Unpin immediately (as the executor's read path does), so the
            // pool can never exhaust: every frame is evictable by the next
            // miss.
            match pool.access(RelId(rel), block).expect("no pins outstanding") {
                FetchOutcome::Miss => pool.finish_read(RelId(rel), block).expect("page resident"),
                FetchOutcome::Hit => {}
            }
            accessed.insert((rel, block));
        }

        // 1. No page is resident in two shards, and every resident page
        //    lives on the shard the hash says is its home.
        let by_shard = pool.shard_resident_keys();
        let mut seen: HashSet<(RelId, u64)> = HashSet::new();
        for (shard, keys) in by_shard.iter().enumerate() {
            for &(rel, block) in keys {
                prop_assert!(
                    seen.insert((rel, block)),
                    "page ({rel:?}, {block}) resident in two shards"
                );
                prop_assert_eq!(pool.shard_of(rel, block), shard, "page off its home shard");
                prop_assert!(accessed.contains(&(rel.0, block)), "page never accessed");
            }
        }

        // 2. Hit/miss/eviction accounting: the pool-wide totals are exactly
        //    the per-shard sums, and every access was either a hit or miss.
        let total = pool.stats();
        let shards = pool.shard_stats();
        prop_assert_eq!(total.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        prop_assert_eq!(total.misses, shards.iter().map(|s| s.misses).sum::<u64>());
        prop_assert_eq!(total.evictions, shards.iter().map(|s| s.evictions).sum::<u64>());
        prop_assert_eq!(total.hits + total.misses, seq.len() as u64);

        // 3. Per-shard conservation and capacity: each miss installs a page
        //    and each eviction removes one, so residency is misses minus
        //    evictions and never exceeds the shard's own frame count — i.e.
        //    eviction pressure in one shard cannot spill into another.
        for (shard, (st, keys)) in shards.iter().zip(by_shard.iter()).enumerate() {
            prop_assert_eq!(
                st.misses - st.evictions,
                keys.len() as u64,
                "shard {} population does not reconcile with its counters",
                shard
            );
            prop_assert!(
                keys.len() <= pool.shard_capacity(),
                "shard {} holds {} pages over its {}-frame capacity",
                shard,
                keys.len(),
                pool.shard_capacity()
            );
            prop_assert!(st.evictions <= st.misses, "shard {} evicted more than it admitted", shard);
        }
    }

    /// A warm working set that fits one shard never evicts from any shard:
    /// per-shard LRU is exact within its slice of the frames.
    #[test]
    fn warm_fit_working_set_never_evicts(
        n_shards in 1usize..9,
        passes in 2usize..6,
    ) {
        // Working set of `shard_capacity` pages all hashed to one home
        // shard would be the worst case; use few enough total pages that
        // even a maximally skewed hash cannot overflow a shard.
        let pool = ShardedBufferPool::new(64, n_shards);
        let blocks: Vec<u64> = (0..pool.shard_capacity() as u64).collect();
        for _ in 0..passes {
            for &b in &blocks {
                if pool.access(RelId(1), b).unwrap() == FetchOutcome::Miss {
                    pool.finish_read(RelId(1), b).expect("page resident");
                }
            }
        }
        let s = pool.stats();
        prop_assert_eq!(s.evictions, 0);
        prop_assert_eq!(s.misses, blocks.len() as u64);
        prop_assert_eq!(s.hits, ((passes - 1) * blocks.len()) as u64);
    }
}
