//! Integration tests for dynamic parallelism adjustment in flight and the
//! Section 5 memory constraint, across engines.

use xprs::{PolicyKind, XprsSystem};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FluidSim;
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{IoKind, MachineConfig, TaskId, TaskProfile};

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

fn seq(id: u64, t: f64, rate: f64) -> TaskProfile {
    TaskProfile::new(TaskId(id), t, rate, IoKind::Sequential)
}

/// A staggered pair: the CPU task finishes first, so the WITH-ADJ policy
/// must adjust the surviving IO task upward mid-flight; the fluid trace
/// must show the survivor's parallelism increasing.
#[test]
fn fluid_trace_shows_the_survivor_expanding() {
    let tasks = vec![seq(0, 40.0, 60.0), seq(1, 10.0, 8.0)];
    let mut cfg = AdaptiveConfig::with_adjustment(m());
    cfg.integral = false;
    let mut p = AdaptiveScheduler::new(cfg);
    let res = FluidSim::new(m()).run(&mut p, &tasks).expect("fluid");
    // Find task 0's parallelism over time.
    let xs: Vec<f64> = res
        .trace
        .segments
        .iter()
        .filter_map(|s| s.running.iter().find(|(id, _, _)| *id == TaskId(0)).map(|(_, x, _)| *x))
        .collect();
    assert!(xs.len() >= 2, "expected at least two schedule segments");
    let first = xs[0];
    let last = *xs.last().unwrap();
    assert!(
        last > first + 0.5,
        "survivor should expand after its partner finishes: {first} → {last}"
    );
    // And it expands to its maxp = 240/60 = 4.
    assert!((last - 4.0).abs() < 1e-6, "survivor tail should run at maxp, got {last}");
}

/// The same staggered pair in the DES: WITH-ADJ must beat a no-adjustment
/// run because the survivor picks up the freed processors.
#[test]
fn des_adjustment_speeds_up_the_tail() {
    let sys = XprsSystem::paper_default();
    let tasks = vec![seq(0, 40.0, 60.0), seq(1, 10.0, 8.0)];
    let adj = sys.simulate(&tasks, PolicyKind::InterWithAdj).expect("sim").elapsed;
    let noadj = sys.simulate(&tasks, PolicyKind::InterWithoutAdj).expect("sim").elapsed;
    assert!(
        adj < noadj * 0.95,
        "adjustment should shorten the survivor's tail: {adj} vs {noadj}"
    );
}

/// With a tight memory budget the pairing becomes impossible and WITH-ADJ
/// degrades exactly to the intra-only schedule — never below it.
#[test]
fn memory_budget_degrades_to_intra_only() {
    let mb = 1024.0 * 1024.0;
    let tasks = vec![
        seq(0, 20.0, 65.0).with_memory(30.0 * mb),
        seq(1, 20.0, 8.0).with_memory(30.0 * mb),
        seq(2, 15.0, 55.0).with_memory(30.0 * mb),
        seq(3, 15.0, 12.0).with_memory(30.0 * mb),
    ];
    let mut wide = m();
    wide.memory = f64::INFINITY;
    let mut narrow = m();
    narrow.memory = 40.0 * mb; // no two tasks fit together

    let sim_wide = FluidSim::new(wide.clone());
    let sim_narrow = FluidSim::new(narrow.clone());

    let mut p_wide = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(wide.clone()));
    let t_wide = sim_wide.run(&mut p_wide, &tasks).expect("fluid").elapsed;

    let mut p_narrow = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(narrow.clone()));
    let t_narrow = sim_narrow.run(&mut p_narrow, &tasks).expect("fluid").elapsed;

    let mut intra = IntraOnly::new(narrow.clone(), true);
    let t_intra = sim_narrow.run(&mut intra, &tasks).expect("fluid").elapsed;

    assert!(t_wide < t_narrow, "memory pressure must cost something: {t_wide} vs {t_narrow}");
    assert!(
        (t_narrow - t_intra).abs() < 1e-6 * t_intra,
        "fully constrained WITH-ADJ must equal INTRA-ONLY: {t_narrow} vs {t_intra}"
    );
}

/// A partner that fits is preferred over a better-rate partner that does
/// not, end to end through the fluid engine.
#[test]
fn scheduler_substitutes_fitting_partners_under_pressure() {
    let mb = 1024.0 * 1024.0;
    let mut machine = m();
    machine.memory = 50.0 * mb;
    let tasks = vec![
        seq(0, 20.0, 65.0).with_memory(40.0 * mb), // IO-bound, big
        seq(1, 20.0, 5.0).with_memory(30.0 * mb),  // best CPU partner, does not fit
        seq(2, 20.0, 12.0).with_memory(5.0 * mb),  // second-best, fits
    ];
    let mut p = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine.clone()));
    let res = FluidSim::new(machine).run(&mut p, &tasks).expect("fluid");
    // In the very first segment the IO task must be paired with task 2.
    let first = &res.trace.segments[0];
    let ids: Vec<u64> = first.running.iter().map(|(id, _, _)| id.0).collect();
    assert!(ids.contains(&0) && ids.contains(&2), "expected pair (0, 2), got {ids:?}");
    assert!(!ids.contains(&1), "task 1 must be deferred (does not fit)");
}

/// Memory constraints also flow through the optimizer: fragments carry
/// footprints, and a tiny machine memory changes the parcost estimate.
#[test]
fn fragment_memory_affects_parcost_under_a_tiny_budget() {
    use xprs::storage::{Datum, Schema, Tuple};
    use xprs::{Costing, Query};

    let build = |memory: f64| {
        let mut machine = m();
        machine.memory = memory;
        let mut sys = XprsSystem::new(machine);
        for (name, n, blen) in [("big_a", 3000u64, 700usize), ("big_b", 3000, 700)] {
            let cat = sys.catalog_mut();
            cat.create(name, Schema::paper_rel());
            cat.load(
                name,
                (0..n).map(|i| {
                    Tuple::from_values(vec![Datum::Int(i as i32), Datum::Text("x".repeat(blen))])
                }),
            );
        }
        let q = Query::join().rel("big_a", 1.0).rel("big_b", 1.0).on(0, 1).build();
        sys.optimize(&q, Costing::ParCost).expect("plan")
    };
    let unconstrained = build(f64::INFINITY);
    // Budget below the combined fragment footprints: concurrent execution of
    // build and probe fragments is forbidden, so the estimate cannot improve.
    let tight = build(1024.0);
    assert!(unconstrained.fragments.fragments.iter().all(|f| f.profile.memory > 0.0));
    assert!(
        tight.parcost >= unconstrained.parcost - 1e-9,
        "a tighter memory budget cannot make the plan faster: {} vs {}",
        tight.parcost,
        unconstrained.parcost
    );
}
