//! Property tests for the Section 2.4 adjustment protocols: every page and
//! every key is handed out exactly once, no matter how parallelism is
//! adjusted mid-scan.

use std::collections::HashMap;

use proptest::prelude::*;
use xprs_storage::partition::{KeyRange, PagePartition, RangePartition};

/// A script of (work-units-before-adjust, new-parallelism) steps.
fn adjust_script() -> impl Strategy<Value = Vec<(u16, u8)>> {
    proptest::collection::vec((0u16..200, 1u8..10), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Page partitioning covers every page exactly once under arbitrary
    /// grow/shrink adjustments at arbitrary points, with workers pulling in
    /// arbitrary (round-robin-ish, seeded) order.
    #[test]
    fn page_partition_exactly_once(
        n_pages in 1u64..600,
        init in 1u32..9,
        script in adjust_script(),
        pull_seed in 0u64..u64::MAX,
    ) {
        let mut p = PagePartition::new(n_pages, init);
        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut script = script.into_iter();
        let mut next_adjust = script.next();
        let mut since_adjust = 0u16;
        let mut rng = pull_seed;

        loop {
            // Pick a pseudo-random live slot to pull next.
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let start = (rng >> 33) as usize % p.n_slots();
            let mut pulled = None;
            for off in 0..p.n_slots() {
                let slot = (start + off) % p.n_slots();
                if let Some(page) = p.next_page(slot) {
                    pulled = Some((slot, page));
                    break;
                }
            }
            let Some((slot, page)) = pulled else { break };
            prop_assert!(page < n_pages);
            prop_assert!(seen.insert(page, slot).is_none(), "page {page} scanned twice");
            since_adjust += 1;
            if let Some((after, par)) = next_adjust {
                if since_adjust >= after {
                    p.adjust(par as u32);
                    since_adjust = 0;
                    next_adjust = script.next();
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, n_pages, "pages lost");
    }

    /// Range partitioning conserves the key space across re-partitioning.
    #[test]
    fn range_partition_exactly_once(
        lo in -500i64..500,
        width in 1i64..800,
        init in 1u32..9,
        script in adjust_script(),
        pull_seed in 0u64..u64::MAX,
    ) {
        let hi = lo + width - 1;
        let mut p = RangePartition::new(lo, hi, init);
        let mut seen = std::collections::HashSet::new();
        let mut script = script.into_iter();
        let mut next_adjust = script.next();
        let mut since_adjust = 0u16;
        let mut rng = pull_seed;

        loop {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let start = (rng >> 33) as usize % p.n_slots();
            let mut pulled = None;
            for off in 0..p.n_slots() {
                let slot = (start + off) % p.n_slots();
                if let Some(k) = p.next_key(slot) {
                    pulled = Some(k);
                    break;
                }
            }
            let Some(k) = pulled else { break };
            prop_assert!((lo..=hi).contains(&k));
            prop_assert!(seen.insert(k), "key {k} scanned twice");
            since_adjust += 1;
            if let Some((after, par)) = next_adjust {
                if since_adjust >= after {
                    p.adjust(par as u32);
                    since_adjust = 0;
                    next_adjust = script.next();
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, width, "keys lost");
    }

    /// After any adjustment the remaining intervals are disjoint and
    /// balanced to within one key.
    #[test]
    fn range_adjustment_balances_remaining_work(
        consumed in 0usize..100,
        new_par in 1u32..9,
    ) {
        let mut p = RangePartition::new(0, 299, 3);
        for _ in 0..consumed {
            for slot in 0..3 {
                p.next_key(slot);
            }
        }
        p.adjust(new_par);
        let active = p.active_slots();
        prop_assert_eq!(active.len(), new_par as usize);
        let sizes: Vec<u64> = active
            .iter()
            .map(|&s| p.remaining(s).iter().map(KeyRange::len).sum())
            .collect();
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(total as usize, 300 - 3 * consumed.min(100));
        if total > 0 {
            prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
        // Disjointness across all slots.
        let mut all: Vec<KeyRange> = active.iter().flat_map(|&s| p.remaining(s)).collect();
        all.sort_by_key(|r| r.lo);
        for w in all.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "overlapping intervals {:?} {:?}", w[0], w[1]);
        }
    }
}
